//! Cache-size sweeps (Figure 10 and the policy-comparison ablation).

use crate::policy::belady::{BeladyMin, FileculeBelady};
use crate::policy::bundle::BundleAffinity;
use crate::policy::fifo::FileFifo;
use crate::policy::filecule_gds::FileculeGds;
use crate::policy::filecule_lru::FileculeLru;
use crate::policy::gds::{CostModel, GreedyDualSize};
use crate::policy::lfu::FileLfu;
use crate::policy::lru::FileLru;
use crate::policy::lruk::FileLruK;
use crate::policy::prefetch::{SuccessorPrefetch, WorkingSetPrefetch};
use crate::policy::size::FileSize;
use crate::sim::{simulate, SimReport};
use filecule_core::FileculeSet;
use hep_trace::{Trace, TB};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One point of the Figure 10 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Cache size in bytes (already divided by the experiment scale).
    pub capacity: u64,
    /// The paper-scale cache size this point corresponds to, in TB.
    pub paper_tb: f64,
    /// File-LRU miss rate.
    pub file_lru_miss: f64,
    /// Filecule-LRU miss rate.
    pub filecule_lru_miss: f64,
}

impl Fig10Row {
    /// file / filecule miss-rate ratio (the paper's "4 to 5 times" factor).
    pub fn improvement_factor(&self) -> f64 {
        if self.filecule_lru_miss == 0.0 {
            f64::INFINITY
        } else {
            self.file_lru_miss / self.filecule_lru_miss
        }
    }
}

/// Run the paper's Figure 10 sweep: file-LRU vs filecule-LRU at the seven
/// cache sizes 1–100 TB, scaled down by `scale` to match a scaled trace.
/// Points run in parallel (each simulation is independent).
pub fn sweep_fig10(trace: &Trace, set: &FileculeSet, scale: f64) -> Vec<Fig10Row> {
    let sizes = hep_trace::synth::calibration::FIG10_CACHE_SIZES_TB;
    sizes
        .par_iter()
        .map(|&tb| {
            let capacity = ((tb * TB) as f64 / scale) as u64;
            let file = simulate(trace, &mut FileLru::new(trace, capacity));
            let filecule = simulate(trace, &mut FileculeLru::new(trace, set, capacity));
            Fig10Row {
                capacity,
                paper_tb: tb as f64,
                file_lru_miss: file.miss_rate(),
                filecule_lru_miss: filecule.miss_rate(),
            }
        })
        .collect()
}

/// Every policy in the crate instantiated at one capacity — the ablation
/// grid comparing the paper's pair against the baselines.
pub fn compare_policies(trace: &Trace, set: &FileculeSet, capacity: u64) -> Vec<SimReport> {
    let mut runs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = Vec::new();
    {
        let t = trace;
        runs.push(Box::new(move || simulate(t, &mut FileLru::new(t, capacity))));
        runs.push(Box::new(move || {
            simulate(t, &mut FileculeLru::new(t, set, capacity))
        }));
        runs.push(Box::new(move || {
            simulate(t, &mut FileculeGds::new(t, set, capacity, CostModel::Uniform))
        }));
        runs.push(Box::new(move || simulate(t, &mut FileFifo::new(t, capacity))));
        runs.push(Box::new(move || simulate(t, &mut FileLfu::new(t, capacity))));
        runs.push(Box::new(move || simulate(t, &mut FileSize::new(t, capacity))));
        runs.push(Box::new(move || {
            simulate(t, &mut GreedyDualSize::new(t, capacity, CostModel::Uniform))
        }));
        runs.push(Box::new(move || {
            simulate(t, &mut GreedyDualSize::new(t, capacity, CostModel::Size))
        }));
        runs.push(Box::new(move || {
            simulate(t, &mut BundleAffinity::new(t, set, capacity))
        }));
        runs.push(Box::new(move || {
            simulate(t, &mut FileLruK::new(t, capacity, 2))
        }));
        runs.push(Box::new(move || {
            simulate(t, &mut SuccessorPrefetch::new(t, capacity, 4))
        }));
        runs.push(Box::new(move || {
            simulate(t, &mut WorkingSetPrefetch::new(t, capacity, 16))
        }));
        runs.push(Box::new(move || simulate(t, &mut BeladyMin::new(t, capacity))));
        runs.push(Box::new(move || {
            simulate(t, &mut FileculeBelady::new(t, set, capacity))
        }));
    }
    runs.into_par_iter().map(|f| f()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use filecule_core::identify;
    use hep_trace::{SynthConfig, TraceSynthesizer};

    fn small() -> (Trace, FileculeSet) {
        let t = TraceSynthesizer::new(SynthConfig::small(81)).generate();
        let set = identify(&t);
        (t, set)
    }

    #[test]
    fn fig10_has_seven_points_and_monotone_capacities() {
        let (t, set) = small();
        let rows = sweep_fig10(&t, &set, 400.0);
        assert_eq!(rows.len(), 7);
        for w in rows.windows(2) {
            assert!(w[0].capacity < w[1].capacity);
            // Miss rates never increase with capacity for LRU on the same
            // trace (stack property holds for LRU).
            assert!(w[1].file_lru_miss <= w[0].file_lru_miss + 1e-12);
        }
    }

    #[test]
    fn fig10_direction_filecule_wins_at_large_caches() {
        let (t, set) = small();
        let rows = sweep_fig10(&t, &set, 400.0);
        let last = rows.last().unwrap();
        assert!(
            last.filecule_lru_miss < last.file_lru_miss,
            "{last:?}"
        );
        assert!(last.improvement_factor() > 2.0, "{last:?}");
    }

    #[test]
    fn compare_policies_consistent_accounting() {
        let (t, set) = small();
        let total: u64 = t.files().iter().map(|f| f.size_bytes).sum();
        let reports = compare_policies(&t, &set, total / 8);
        assert_eq!(reports.len(), 14);
        let requests = reports[0].requests;
        for r in &reports {
            assert_eq!(r.requests, requests, "{}", r.policy);
            assert_eq!(r.hits + r.misses, r.requests, "{}", r.policy);
            assert!(r.miss_rate() > 0.0 && r.miss_rate() <= 1.0, "{}", r.policy);
        }
        // Belady (file granularity) must beat every other *demand-paging*
        // file-granularity policy on request miss rate (prefetching
        // policies are not demand policies, so they are excluded).
        let belady = reports.iter().find(|r| r.policy == "belady-min").unwrap();
        for r in &reports {
            if r.policy != "belady-min"
                && !r.policy.contains("filecule")
                && !r.policy.contains("prefetch")
            {
                assert!(
                    belady.misses <= r.misses,
                    "belady {} > {} {}",
                    belady.misses,
                    r.policy,
                    r.misses
                );
            }
        }
    }
}
