//! Cache-size sweeps (Figure 10 and the policy-comparison ablation).
//!
//! Both sweeps are thin drivers over the shared replay engine: the trace is
//! materialized into a [`ReplayLog`] once and every simulation point reads
//! that same log. The trace-taking entry points ([`sweep_fig10`],
//! [`compare_policies`]) build the log themselves; pipelines that run
//! several sweeps over one trace should build it once and call the
//! `_log` variants.

use crate::policy::filecule_lru::FileculeLru;
use crate::policy::lru::FileLru;
use crate::policy::Policy;
use crate::sim::{SimError, SimReport, Simulator};
use crate::spec::{build_policy_from_source, PolicySpec};
use filecule_core::FileculeSet;
use hep_trace::{EventSource, ReplayLog, Trace, TB};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One point of the Figure 10 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Cache size in bytes (already divided by the experiment scale).
    pub capacity: u64,
    /// The paper-scale cache size this point corresponds to, in TB.
    pub paper_tb: f64,
    /// File-LRU miss rate.
    pub file_lru_miss: f64,
    /// Filecule-LRU miss rate.
    pub filecule_lru_miss: f64,
}

impl Fig10Row {
    /// file / filecule miss-rate ratio (the paper's "4 to 5 times" factor).
    pub fn improvement_factor(&self) -> f64 {
        if self.filecule_lru_miss == 0.0 {
            f64::INFINITY
        } else {
            self.file_lru_miss / self.filecule_lru_miss
        }
    }
}

/// Run the paper's Figure 10 sweep: file-LRU vs filecule-LRU at the seven
/// cache sizes 1–100 TB, scaled down by `scale` to match a scaled trace.
/// Materializes the replay stream once, then runs the points in parallel
/// over the shared log.
pub fn sweep_fig10(trace: &Trace, set: &FileculeSet, scale: f64) -> Vec<Fig10Row> {
    sweep_fig10_log(&ReplayLog::build(trace), trace, set, scale)
        .expect("in-memory replay is infallible")
}

/// [`sweep_fig10`] over any shared [`EventSource`] (an in-memory log or
/// a disk-backed streamed log). On failure the error of the first
/// failing point (lowest capacity) is returned deterministically.
pub fn sweep_fig10_log(
    source: &dyn EventSource,
    trace: &Trace,
    set: &FileculeSet,
    scale: f64,
) -> Result<Vec<Fig10Row>, SimError> {
    let sizes = hep_trace::synth::calibration::FIG10_CACHE_SIZES_TB;
    let sim = Simulator::new();
    let rows: Vec<Result<Fig10Row, SimError>> = sizes
        .par_iter()
        .map(|&tb| {
            let capacity = ((tb * TB) as f64 / scale) as u64;
            let file = sim.run(source, &mut FileLru::new(trace, capacity))?;
            let filecule = sim.run(source, &mut FileculeLru::new(trace, set, capacity))?;
            Ok(Fig10Row {
                capacity,
                paper_tb: tb as f64,
                file_lru_miss: file.miss_rate(),
                filecule_lru_miss: filecule.miss_rate(),
            })
        })
        .collect();
    rows.into_iter().collect()
}

/// Every policy in the crate instantiated at one capacity — the ablation
/// grid comparing the paper's pair against the baselines. One shared
/// materialization, one pass per policy, policies in parallel.
pub fn compare_policies(trace: &Trace, set: &FileculeSet, capacity: u64) -> Vec<SimReport> {
    compare_policies_log(
        &ReplayLog::build(trace),
        trace,
        set,
        capacity,
        &PolicySpec::ALL,
    )
    .expect("in-memory replay is infallible")
}

/// [`compare_policies`] over any shared [`EventSource`], restricted to the
/// given policy selection (see [`PolicySpec::parse_list`]). Post-open I/O
/// failures of a disk-backed source surface as [`SimError::Stream`],
/// whether they hit while building the offline policies or during replay.
pub fn compare_policies_log(
    source: &dyn EventSource,
    trace: &Trace,
    set: &FileculeSet,
    capacity: u64,
    specs: &[PolicySpec],
) -> Result<Vec<SimReport>, SimError> {
    let mut policies: Vec<Box<dyn Policy + Send>> = specs
        .iter()
        .map(|&spec| build_policy_from_source(spec, source, trace, set, capacity))
        .collect::<Result<_, _>>()?;
    Simulator::new().run_many(source, &mut policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use filecule_core::identify;
    use hep_trace::{SynthConfig, TraceSynthesizer};

    fn small() -> (Trace, FileculeSet) {
        let t = TraceSynthesizer::new(SynthConfig::small(81)).generate();
        let set = identify(&t);
        (t, set)
    }

    #[test]
    fn fig10_has_seven_points_and_monotone_capacities() {
        let (t, set) = small();
        let rows = sweep_fig10(&t, &set, 400.0);
        assert_eq!(rows.len(), 7);
        for w in rows.windows(2) {
            assert!(w[0].capacity < w[1].capacity);
            // Miss rates never increase with capacity for LRU on the same
            // trace (stack property holds for LRU).
            assert!(w[1].file_lru_miss <= w[0].file_lru_miss + 1e-12);
        }
    }

    #[test]
    fn fig10_direction_filecule_wins_at_large_caches() {
        let (t, set) = small();
        let rows = sweep_fig10(&t, &set, 400.0);
        let last = rows.last().unwrap();
        assert!(last.filecule_lru_miss < last.file_lru_miss, "{last:?}");
        assert!(last.improvement_factor() > 2.0, "{last:?}");
    }

    #[test]
    fn fig10_materializes_once() {
        let (t, set) = small();
        let before = hep_trace::materialization_count();
        let _ = sweep_fig10(&t, &set, 400.0);
        assert_eq!(hep_trace::materialization_count(), before + 1);
    }

    #[test]
    fn compare_policies_consistent_accounting() {
        let (t, set) = small();
        let total: u64 = t.files().iter().map(|f| f.size_bytes).sum();
        let reports = compare_policies(&t, &set, total / 8);
        assert_eq!(reports.len(), 20);
        let requests = reports[0].requests;
        for r in &reports {
            assert_eq!(r.requests, requests, "{}", r.policy);
            assert_eq!(r.hits + r.misses, r.requests, "{}", r.policy);
            assert!(r.miss_rate() > 0.0 && r.miss_rate() <= 1.0, "{}", r.policy);
        }
        // Belady (file granularity) must beat the classic *demand-paging*
        // file-granularity policies on request miss rate. Explicit
        // allowlist: prefetchers are not demand policies, filecule
        // policies fetch whole groups, and the admission-gated family
        // (TinyLFU & co) may bypass on miss — a move outside the
        // demand-paging model Belady is optimal for.
        let belady = reports.iter().find(|r| r.policy == "belady-min").unwrap();
        let demand_file = [
            "file-lru",
            "file-fifo",
            "file-lfu",
            "file-size",
            "gds-uniform(landlord)",
            "gds-size",
            "file-lru2",
        ];
        for r in &reports {
            if demand_file.contains(&r.policy.as_str()) {
                assert!(
                    belady.misses <= r.misses,
                    "belady {} > {} {}",
                    belady.misses,
                    r.policy,
                    r.misses
                );
            }
        }
    }

    #[test]
    fn compare_policies_materializes_once() {
        let (t, set) = small();
        let total: u64 = t.files().iter().map(|f| f.size_bytes).sum();
        let before = hep_trace::materialization_count();
        let _ = compare_policies(&t, &set, total / 8);
        assert_eq!(hep_trace::materialization_count(), before + 1);
    }

    #[test]
    fn compare_policies_log_subset_matches_full_grid() {
        let (t, set) = small();
        let total: u64 = t.files().iter().map(|f| f.size_bytes).sum();
        let capacity = total / 8;
        let log = ReplayLog::build(&t);
        let full = compare_policies_log(&log, &t, &set, capacity, &PolicySpec::ALL).unwrap();
        let subset = compare_policies_log(
            &log,
            &t,
            &set,
            capacity,
            &[PolicySpec::FileculeLru, PolicySpec::BeladyMin],
        )
        .unwrap();
        assert_eq!(subset.len(), 2);
        assert_eq!(subset[0].policy, full[1].policy);
        assert_eq!(subset[0].misses, full[1].misses);
        assert_eq!(subset[1].policy, full[12].policy);
        assert_eq!(subset[1].misses, full[12].misses);
    }
}
