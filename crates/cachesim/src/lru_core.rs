//! A dense-key intrusive LRU list.
//!
//! Cache keys in this workspace are dense `u32` ids (file ids or filecule
//! ids), so recency bookkeeping is two flat `Vec<u32>`s acting as an
//! intrusive doubly-linked list — no per-entry allocation, O(1) touch /
//! insert / evict (per the HPC guide's "avoid allocations in hot loops").

/// Sentinel for "no link".
const NONE: u32 = u32::MAX;

/// An intrusive LRU order over keys `0..n`.
///
/// The list tracks *order only*; byte accounting lives in the policies.
#[derive(Debug, Clone)]
pub struct DenseLru {
    prev: Vec<u32>,
    next: Vec<u32>,
    resident: Vec<bool>,
    /// Most recently used.
    head: u32,
    /// Least recently used.
    tail: u32,
    len: usize,
}

impl DenseLru {
    /// An empty order over keys `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            prev: vec![NONE; n],
            next: vec![NONE; n],
            resident: vec![false; n],
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no key is resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `k` resident?
    #[inline]
    pub fn contains(&self, k: u32) -> bool {
        self.resident[k as usize]
    }

    /// Insert `k` as most-recently-used.
    ///
    /// # Panics
    /// Panics (debug) if `k` is already resident.
    pub fn insert(&mut self, k: u32) {
        debug_assert!(!self.resident[k as usize], "key {k} already resident");
        self.resident[k as usize] = true;
        self.prev[k as usize] = NONE;
        self.next[k as usize] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = k;
        }
        self.head = k;
        if self.tail == NONE {
            self.tail = k;
        }
        self.len += 1;
    }

    /// Move resident `k` to most-recently-used position.
    ///
    /// # Panics
    /// Panics (debug) if `k` is not resident.
    pub fn touch(&mut self, k: u32) {
        debug_assert!(self.resident[k as usize], "key {k} not resident");
        if self.head == k {
            return;
        }
        self.unlink(k);
        self.prev[k as usize] = NONE;
        self.next[k as usize] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = k;
        }
        self.head = k;
        if self.tail == NONE {
            self.tail = k;
        }
    }

    /// Remove and return the least-recently-used key.
    pub fn pop_lru(&mut self) -> Option<u32> {
        if self.tail == NONE {
            return None;
        }
        let k = self.tail;
        self.remove(k);
        Some(k)
    }

    /// The least-recently-used key, if any.
    pub fn peek_lru(&self) -> Option<u32> {
        (self.tail != NONE).then_some(self.tail)
    }

    /// Remove `k` from the order.
    ///
    /// # Panics
    /// Panics (debug) if `k` is not resident.
    pub fn remove(&mut self, k: u32) {
        debug_assert!(self.resident[k as usize], "key {k} not resident");
        self.unlink(k);
        self.resident[k as usize] = false;
        self.len -= 1;
    }

    fn unlink(&mut self, k: u32) {
        let (p, n) = (self.prev[k as usize], self.next[k as usize]);
        if p != NONE {
            self.next[p as usize] = n;
        } else if self.head == k {
            self.head = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        } else if self.tail == k {
            self.tail = p;
        }
        self.prev[k as usize] = NONE;
        self.next[k as usize] = NONE;
    }

    /// Iterate keys from most- to least-recently-used (for tests/debugging).
    pub fn iter_mru(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NONE {
                None
            } else {
                let k = cur;
                cur = self.next[cur as usize];
                Some(k)
            }
        })
    }

    /// Iterate keys from least- to most-recently-used: the eviction order.
    /// TinyLFU's admission filter walks this to compare the candidate's
    /// frequency against the victims it would displace.
    pub fn iter_lru(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.tail;
        std::iter::from_fn(move || {
            if cur == NONE {
                None
            } else {
                let k = cur;
                cur = self.prev[cur as usize];
                Some(k)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_orders_mru_first() {
        let mut l = DenseLru::new(5);
        l.insert(0);
        l.insert(1);
        l.insert(2);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![2, 1, 0]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = DenseLru::new(5);
        l.insert(0);
        l.insert(1);
        l.insert(2);
        l.touch(0);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![0, 2, 1]);
        assert_eq!(l.peek_lru(), Some(1));
    }

    #[test]
    fn iter_lru_is_reverse_of_iter_mru() {
        let mut l = DenseLru::new(5);
        l.insert(0);
        l.insert(1);
        l.insert(2);
        l.touch(0);
        let mut mru: Vec<u32> = l.iter_mru().collect();
        mru.reverse();
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), mru);
        assert_eq!(l.iter_lru().next(), l.peek_lru());
        assert_eq!(DenseLru::new(3).iter_lru().count(), 0);
    }

    #[test]
    fn pop_lru_returns_oldest() {
        let mut l = DenseLru::new(5);
        l.insert(0);
        l.insert(1);
        l.insert(2);
        assert_eq!(l.pop_lru(), Some(0));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle_keeps_links() {
        let mut l = DenseLru::new(5);
        for k in 0..4 {
            l.insert(k);
        }
        l.remove(2);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![3, 1, 0]);
        assert!(!l.contains(2));
        l.insert(2);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![2, 3, 1, 0]);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = DenseLru::new(3);
        l.insert(0);
        l.insert(1);
        l.insert(2);
        l.remove(2); // head
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1, 0]);
        l.remove(0); // tail
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1]);
        assert_eq!(l.peek_lru(), Some(1));
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = DenseLru::new(3);
        l.insert(0);
        l.insert(1);
        l.touch(1);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1, 0]);
    }

    #[test]
    fn single_element_cycle() {
        let mut l = DenseLru::new(1);
        l.insert(0);
        l.touch(0);
        assert_eq!(l.pop_lru(), Some(0));
        assert!(l.is_empty());
        l.insert(0);
        assert!(l.contains(0));
    }

    #[test]
    fn reinsertion_after_eviction() {
        let mut l = DenseLru::new(2);
        l.insert(0);
        l.insert(1);
        assert_eq!(l.pop_lru(), Some(0));
        l.insert(0);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn matches_reference_model_random_ops() {
        use std::collections::VecDeque;
        let mut l = DenseLru::new(16);
        let mut reference: VecDeque<u32> = VecDeque::new(); // front = MRU
        let mut state = 0x1234_5678_u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..10_000 {
            let k = rand() % 16;
            match rand() % 3 {
                0 => {
                    if !l.contains(k) {
                        l.insert(k);
                        reference.push_front(k);
                    }
                }
                1 => {
                    if l.contains(k) {
                        l.touch(k);
                        let pos = reference.iter().position(|&x| x == k).unwrap();
                        reference.remove(pos);
                        reference.push_front(k);
                    }
                }
                _ => {
                    assert_eq!(l.pop_lru(), reference.pop_back());
                }
            }
            assert_eq!(l.len(), reference.len());
        }
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), Vec::from(reference));
    }
}
