//! # cachesim
//!
//! Storage-cache simulator for the filecules reproduction (HPDC 2006,
//! Section 4).
//!
//! The paper's evaluation replays the DZero request stream against a disk
//! cache of 1–100 TB and compares LRU replacement at *file* granularity
//! with LRU at *filecule* granularity ("load the entire filecule of which a
//! requested file is member and evict the least recently used filecules").
//! Figure 10's headline: filecule-LRU's miss rate is up to 4–5x lower at
//! large cache sizes, with only a ~9.5% gap at 1 TB.
//!
//! This crate provides:
//!
//! * the two policies of the paper ([`policy::lru::FileLru`],
//!   [`policy::filecule_lru::FileculeLru`]);
//! * the baselines the paper's related work discusses:
//!   FIFO, LFU, SIZE, GreedyDual-Size (with Landlord's uniform-cost
//!   variant), offline Belady MIN, and a bundle-affinity eviction policy
//!   inspired by Otoo et al.;
//! * a request-ordered replay engine ([`sim`]): a [`Simulator`] drives
//!   one or many policies over any shared [`hep_trace::EventSource`] — the
//!   in-memory [`hep_trace::ReplayLog`] or the bounded-memory
//!   [`hep_trace::StreamedLog`] — ([`Simulator::run`],
//!   [`Simulator::run_many`]) with full accounting (request and byte miss
//!   rates, cold-miss separation, prefetch traffic);
//! * a modern policy family at both granularities: segmented LRU
//!   ([`policy::slru::Slru`]), LFU with dynamic aging
//!   ([`policy::lfuda::Lfuda`]) and TinyLFU admission
//!   ([`policy::tinylfu::TinyLfu`], backed by
//!   [`filecule_core::CountMinSketch`]);
//! * a declarative policy registry ([`spec`]): [`PolicySpec`] names every
//!   shipped configuration and [`spec::build_policy`] constructs it, so
//!   CLI flags, sweeps and the report grid share one parser and factory;
//! * a segment-sharded concurrent engine ([`sharded`]): hash each object
//!   to one of N independent per-segment policy instances and replay
//!   segments in parallel ([`Simulator::run_spec`]), bit-identical to the
//!   serial dispatch for partition-independent policies;
//! * a parallel cache-size sweep harness ([`sweep`]) that regenerates
//!   Figure 10 and the policy-comparison grid in a single pass each over
//!   the shared log;
//! * checkpoint/resume for streamed sweeps ([`resume`]): per-spec result
//!   manifests written atomically beside the output file, so a killed
//!   sweep resumed with the same parameters reproduces the uninterrupted
//!   final CSV bit for bit.
//!
//! Streamed replay is fallible: entry points that accept an
//! [`hep_trace::EventSource`] return a `Result` whose error is
//! [`SimError`], with post-open I/O failures of disk-backed sources
//! carried as [`SimError::Stream`]. The in-memory [`hep_trace::ReplayLog`] path
//! never fails at replay time, and the trace-taking convenience wrappers
//! ([`simulate`], [`sweep_fig10`], …) stay infallible on top of it.
//!
//! Semantics shared by all policies: requests are served in trace order;
//! an object larger than the cache bypasses it (it is fetched but not
//! inserted — this is what erodes filecule-LRU's advantage at 1 TB, where
//! multi-TB filecules cannot be retained; the largest filecule in the
//! paper is 17 TB).

#![warn(missing_docs)]

pub mod faults_hook;
pub mod lru_core;
pub mod policy;
pub mod resume;
pub mod sharded;
pub mod sim;
pub mod spec;
pub mod stackdist;
pub mod sweep;

pub use faults_hook::ColdStorageFaults;
pub use policy::filecule_lru::FileculeLru;
pub use policy::lfuda::Lfuda;
pub use policy::lru::FileLru;
pub use policy::slru::Slru;
pub use policy::tinylfu::TinyLfu;
pub use policy::{AccessEvent, AccessResult, Policy};
pub use resume::{reports_csv, run_specs_stream_resumable, ManifestStore, RunParams, SpecManifest};
pub use sharded::{split_capacity, ShardPlan};
pub use sim::{
    simulate, simulate_warm, FaultHook, FaultStats, FetchOutcome, ReplayAccum, SimError,
    SimOptions, SimReport, Simulator,
};
pub use spec::{
    build_policy, build_policy_from_log, build_policy_from_source, build_policy_stream, PolicySpec,
    SpecGranularity,
};
pub use stackdist::{
    file_reuse_profile, file_reuse_profile_from_log, filecule_reuse_profile,
    filecule_reuse_profile_from_log, ReuseProfile,
};
pub use sweep::{compare_policies, compare_policies_log, sweep_fig10, sweep_fig10_log, Fig10Row};
