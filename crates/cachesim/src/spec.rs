//! Declarative policy selection: a [`PolicySpec`] names each policy
//! configuration the crate ships, and [`build_policy`] /
//! [`build_policy_from_source`] construct the boxed [`Policy`] for it
//! (from a trace alone, or from any shared [`EventSource`]).
//!
//! This replaces ad-hoc constructor lists (the sweep's boxed closures, the
//! CLI's string match) with one shared registry, so `--policies
//! file-lru,filecule-lru,...` selections parse and build identically
//! everywhere.

use crate::policy::belady::{BeladyMin, FileculeBelady};
use crate::policy::bundle::BundleAffinity;
use crate::policy::fifo::FileFifo;
use crate::policy::filecule_gds::FileculeGds;
use crate::policy::filecule_lru::FileculeLru;
use crate::policy::gds::{CostModel, GreedyDualSize};
use crate::policy::lfu::FileLfu;
use crate::policy::lfuda::Lfuda;
use crate::policy::lru::FileLru;
use crate::policy::lruk::FileLruK;
use crate::policy::prefetch::{SuccessorPrefetch, WorkingSetPrefetch};
use crate::policy::size::FileSize;
use crate::policy::slru::Slru;
use crate::policy::tinylfu::TinyLfu;
use crate::policy::Policy;
use crate::sim::SimError;
use filecule_core::FileculeSet;
use hep_trace::{EventSource, ReplayLog, Trace};

/// Every policy configuration the crate ships, as a value. The grid/sweep
/// default is [`PolicySpec::ALL`]; subsets parse from comma-separated
/// [`PolicySpec::key`] tokens via [`PolicySpec::parse_list`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicySpec {
    /// File-granularity LRU (the paper's baseline).
    FileLru,
    /// Filecule-granularity LRU (the paper's contribution).
    FileculeLru,
    /// GreedyDual-Size over filecules, uniform cost.
    FileculeGds,
    /// File-granularity FIFO.
    FileFifo,
    /// File-granularity LFU.
    FileLfu,
    /// SIZE (largest-file-first eviction).
    FileSize,
    /// GreedyDual-Size, uniform cost (Landlord's variant).
    GdsUniform,
    /// GreedyDual-Size, size-proportional cost.
    GdsSize,
    /// Bundle-affinity eviction (Otoo et al. inspired).
    BundleAffinity,
    /// LRU-2 (second-to-last reference ordering).
    FileLru2,
    /// Per-file successor-graph prefetcher (depth 4).
    SuccessorPrefetch,
    /// Per-job working-set prefetcher (window 16).
    WorkingSetPrefetch,
    /// Offline Belady MIN at file granularity.
    BeladyMin,
    /// Offline Belady MIN at filecule granularity.
    FileculeBelady,
    /// Segmented LRU (probation + protected) at file granularity.
    FileSlru,
    /// Segmented LRU at filecule granularity.
    FileculeSlru,
    /// LFU with dynamic aging at file granularity.
    FileLfuda,
    /// LFU with dynamic aging at filecule granularity.
    FileculeLfuda,
    /// TinyLFU (LRU + count-min admission filter) at file granularity.
    FileTinyLfu,
    /// TinyLFU at filecule granularity.
    FileculeTinyLfu,
}

/// Object granularity a [`PolicySpec`] caches at — what the sharded
/// engine must keep together when hashing objects to segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecGranularity {
    /// One cacheable object per file.
    File,
    /// One cacheable object per filecule (a group never spans segments).
    Filecule,
}

impl PolicySpec {
    /// Every spec, in the canonical grid order (the order
    /// `compare_policies` reports).
    pub const ALL: [PolicySpec; 20] = [
        PolicySpec::FileLru,
        PolicySpec::FileculeLru,
        PolicySpec::FileculeGds,
        PolicySpec::FileFifo,
        PolicySpec::FileLfu,
        PolicySpec::FileSize,
        PolicySpec::GdsUniform,
        PolicySpec::GdsSize,
        PolicySpec::BundleAffinity,
        PolicySpec::FileLru2,
        PolicySpec::SuccessorPrefetch,
        PolicySpec::WorkingSetPrefetch,
        PolicySpec::BeladyMin,
        PolicySpec::FileculeBelady,
        // The modern family rides at the end so historical grid indices
        // (and the bench CSV column order callers pin) stay stable.
        PolicySpec::FileSlru,
        PolicySpec::FileculeSlru,
        PolicySpec::FileLfuda,
        PolicySpec::FileculeLfuda,
        PolicySpec::FileTinyLfu,
        PolicySpec::FileculeTinyLfu,
    ];

    /// The canonical selection token (what `--policies` lists are written
    /// in).
    pub fn key(self) -> &'static str {
        match self {
            PolicySpec::FileLru => "file-lru",
            PolicySpec::FileculeLru => "filecule-lru",
            PolicySpec::FileculeGds => "filecule-gds",
            PolicySpec::FileFifo => "file-fifo",
            PolicySpec::FileLfu => "file-lfu",
            PolicySpec::FileSize => "file-size",
            PolicySpec::GdsUniform => "gds-uniform",
            PolicySpec::GdsSize => "gds-size",
            PolicySpec::BundleAffinity => "bundle-affinity",
            PolicySpec::FileLru2 => "file-lru2",
            PolicySpec::SuccessorPrefetch => "successor-prefetch",
            PolicySpec::WorkingSetPrefetch => "workingset-prefetch",
            PolicySpec::BeladyMin => "belady-min",
            PolicySpec::FileculeBelady => "filecule-belady",
            PolicySpec::FileSlru => "file-slru",
            PolicySpec::FileculeSlru => "filecule-slru",
            PolicySpec::FileLfuda => "file-lfuda",
            PolicySpec::FileculeLfuda => "filecule-lfuda",
            PolicySpec::FileTinyLfu => "file-tinylfu",
            PolicySpec::FileculeTinyLfu => "filecule-tinylfu",
        }
    }

    /// Object granularity the spec caches at.
    pub fn granularity(self) -> SpecGranularity {
        match self {
            PolicySpec::FileculeLru
            | PolicySpec::FileculeGds
            | PolicySpec::BundleAffinity
            | PolicySpec::FileculeBelady
            | PolicySpec::FileculeSlru
            | PolicySpec::FileculeLfuda
            | PolicySpec::FileculeTinyLfu => SpecGranularity::Filecule,
            _ => SpecGranularity::File,
        }
    }

    /// Whether the policy's replay decomposes over an object partition:
    /// its decisions for one cached object depend only on accesses to
    /// objects in the same segment, so the sharded engine can replay
    /// segments independently and merge — bit-identical to dispatching
    /// the global stream serially into the same per-segment instances.
    ///
    /// Demand-fetch policies qualify. The exceptions hold cross-object
    /// state that a partition would sever: the prefetchers fetch files
    /// other than the one requested, bundle affinity scores jobs across
    /// the whole trace, LRU-2's history spans the full stream relative
    /// order, and the offline Belady pair is built from the global future.
    pub fn is_partition_independent(self) -> bool {
        !matches!(
            self,
            PolicySpec::BundleAffinity
                | PolicySpec::FileLru2
                | PolicySpec::SuccessorPrefetch
                | PolicySpec::WorkingSetPrefetch
                | PolicySpec::BeladyMin
                | PolicySpec::FileculeBelady
        )
    }

    /// Parse one selection token. Accepts the canonical [`PolicySpec::key`]
    /// plus the short aliases the CLI has always taken (`fifo`, `lfu`,
    /// `size`, `gds`, `landlord`, `lru2`, `belady`, `bundle`, `successor`,
    /// `workingset`).
    pub fn parse(token: &str) -> Option<Self> {
        Some(match token {
            "file-lru" => PolicySpec::FileLru,
            "filecule-lru" => PolicySpec::FileculeLru,
            "filecule-gds" => PolicySpec::FileculeGds,
            "file-fifo" | "fifo" => PolicySpec::FileFifo,
            "file-lfu" | "lfu" => PolicySpec::FileLfu,
            "file-size" | "size" => PolicySpec::FileSize,
            "gds-uniform" | "gds" | "landlord" => PolicySpec::GdsUniform,
            "gds-size" => PolicySpec::GdsSize,
            "bundle-affinity" | "bundle" => PolicySpec::BundleAffinity,
            "file-lru2" | "lru2" => PolicySpec::FileLru2,
            "successor-prefetch" | "successor" => PolicySpec::SuccessorPrefetch,
            "workingset-prefetch" | "workingset" => PolicySpec::WorkingSetPrefetch,
            "belady-min" | "belady" => PolicySpec::BeladyMin,
            "filecule-belady" => PolicySpec::FileculeBelady,
            "file-slru" | "slru" => PolicySpec::FileSlru,
            "filecule-slru" => PolicySpec::FileculeSlru,
            "file-lfuda" | "lfuda" => PolicySpec::FileLfuda,
            "filecule-lfuda" => PolicySpec::FileculeLfuda,
            "file-tinylfu" | "tinylfu" => PolicySpec::FileTinyLfu,
            "filecule-tinylfu" => PolicySpec::FileculeTinyLfu,
            _ => return None,
        })
    }

    /// Parse a comma-separated selection list (`"file-lru,filecule-lru"`);
    /// `"all"` (or an empty string) selects [`PolicySpec::ALL`].
    pub fn parse_list(list: &str) -> Result<Vec<Self>, String> {
        let list = list.trim();
        if list.is_empty() || list == "all" {
            return Ok(Self::ALL.to_vec());
        }
        list.split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| {
                Self::parse(t).ok_or_else(|| {
                    let known: Vec<&str> = Self::ALL.iter().map(|s| s.key()).collect();
                    format!("unknown policy {t:?} (known: {})", known.join(", "))
                })
            })
            .collect()
    }
}

impl std::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Build the policy a spec names. The offline Belady specs materialize the
/// replay stream once each; use [`build_policy_from_log`] with a shared
/// [`ReplayLog`] to avoid that.
pub fn build_policy(
    spec: PolicySpec,
    trace: &Trace,
    set: &FileculeSet,
    capacity: u64,
) -> Box<dyn Policy + Send> {
    match spec {
        PolicySpec::BeladyMin | PolicySpec::FileculeBelady => {
            build_policy_from_log(spec, &ReplayLog::build(trace), trace, set, capacity)
        }
        _ => build_online_policy(spec, trace, set, capacity),
    }
}

/// Build the policy a spec names against an already-materialized log:
/// constructs everything (including the offline Belady policies) without
/// touching `trace.replay_events()`.
pub fn build_policy_from_log(
    spec: PolicySpec,
    log: &ReplayLog,
    trace: &Trace,
    set: &FileculeSet,
    capacity: u64,
) -> Box<dyn Policy + Send> {
    build_policy_from_source(spec, log, trace, set, capacity)
        .expect("in-memory replay is infallible")
}

/// Build the policy a spec names against any [`EventSource`]. Online
/// specs never touch the stream; the offline Belady pair collects the
/// replay-ordered file column in one chunked pass (4 bytes per event —
/// future-knowledge tables are inherently full-stream), so a disk-backed
/// source can surface post-open I/O failures here as
/// [`SimError::Stream`].
pub fn build_policy_from_source(
    spec: PolicySpec,
    source: &dyn EventSource,
    trace: &Trace,
    set: &FileculeSet,
    capacity: u64,
) -> Result<Box<dyn Policy + Send>, SimError> {
    Ok(match spec {
        PolicySpec::BeladyMin => Box::new(BeladyMin::from_source(source, capacity)?),
        PolicySpec::FileculeBelady => Box::new(FileculeBelady::from_source(source, set, capacity)?),
        _ => build_online_policy(spec, trace, set, capacity),
    })
}

/// Build the policy a spec names from an [`EventSource`] alone — no
/// `Trace` anywhere. This is the fully out-of-core builder behind
/// `simulate --stream`: every constructor runs off the source's
/// file-size table (plus the filecule partition, itself computable
/// out-of-core via `filecule_core::identify_from_source`).
///
/// Fails with [`SimError::Unsupported`] for
/// [`PolicySpec::WorkingSetPrefetch`] on a source that does not carry
/// the per-job user table ([`EventSource::job_users`]); FCTB2-backed
/// sources carry it. Disk-backed sources can additionally surface
/// post-open I/O failures as [`SimError::Stream`] while the offline
/// Belady pair scans the stream.
///
/// The offline Belady pair is built via
/// [`BeladyMin::from_source`]/[`FileculeBelady::from_source`], which
/// costs one extra pass over the stream; the sharded engine's streamed
/// runner avoids even that by recording a [`hep_trace::SpillLog`] and
/// using the spill-backed constructors instead.
pub fn build_policy_stream(
    spec: PolicySpec,
    source: &dyn EventSource,
    set: &FileculeSet,
    capacity: u64,
) -> Result<Box<dyn Policy + Send>, SimError> {
    let sizes = source.file_sizes();
    Ok(match spec {
        PolicySpec::FileLru => Box::new(FileLru::from_sizes(sizes.to_vec(), capacity)),
        PolicySpec::FileculeLru => Box::new(FileculeLru::from_sizes(sizes, set, capacity)),
        PolicySpec::FileculeGds => Box::new(FileculeGds::from_sizes(
            sizes,
            set,
            capacity,
            CostModel::Uniform,
        )),
        PolicySpec::FileFifo => Box::new(FileFifo::from_sizes(sizes.to_vec(), capacity)),
        PolicySpec::FileLfu => Box::new(FileLfu::from_sizes(sizes.to_vec(), capacity)),
        PolicySpec::FileSize => Box::new(FileSize::from_sizes(sizes.to_vec(), capacity)),
        PolicySpec::GdsUniform => Box::new(GreedyDualSize::from_sizes(
            sizes.to_vec(),
            capacity,
            CostModel::Uniform,
        )),
        PolicySpec::GdsSize => Box::new(GreedyDualSize::from_sizes(
            sizes.to_vec(),
            capacity,
            CostModel::Size,
        )),
        PolicySpec::BundleAffinity => {
            Box::new(BundleAffinity::from_sizes(sizes.to_vec(), set, capacity))
        }
        PolicySpec::FileLru2 => Box::new(FileLruK::from_sizes(sizes.to_vec(), capacity, 2)),
        PolicySpec::SuccessorPrefetch => {
            Box::new(SuccessorPrefetch::from_sizes(sizes.to_vec(), capacity, 4))
        }
        PolicySpec::WorkingSetPrefetch => {
            let users = source.job_users().ok_or_else(|| {
                SimError::Unsupported(format!(
                    "policy {} needs the per-job user table, which this event source \
                     does not carry",
                    spec.key()
                ))
            })?;
            Box::new(WorkingSetPrefetch::from_parts(
                sizes.to_vec(),
                users.to_vec(),
                capacity,
                16,
            ))
        }
        PolicySpec::BeladyMin => Box::new(BeladyMin::from_source(source, capacity)?),
        PolicySpec::FileculeBelady => Box::new(FileculeBelady::from_source(source, set, capacity)?),
        PolicySpec::FileSlru => Box::new(Slru::file_from_sizes(sizes.to_vec(), capacity)),
        PolicySpec::FileculeSlru => Box::new(Slru::filecule_from_sizes(sizes, set, capacity)),
        PolicySpec::FileLfuda => Box::new(Lfuda::file_from_sizes(sizes.to_vec(), capacity)),
        PolicySpec::FileculeLfuda => Box::new(Lfuda::filecule_from_sizes(sizes, set, capacity)),
        PolicySpec::FileTinyLfu => Box::new(TinyLfu::file_from_sizes(sizes.to_vec(), capacity)),
        PolicySpec::FileculeTinyLfu => Box::new(TinyLfu::filecule_from_sizes(sizes, set, capacity)),
    })
}

/// The online (non-Belady) constructors, which never need the replay
/// stream — only the trace's file metadata and the filecule partition.
fn build_online_policy(
    spec: PolicySpec,
    trace: &Trace,
    set: &FileculeSet,
    capacity: u64,
) -> Box<dyn Policy + Send> {
    match spec {
        PolicySpec::FileLru => Box::new(FileLru::new(trace, capacity)),
        PolicySpec::FileculeLru => Box::new(FileculeLru::new(trace, set, capacity)),
        PolicySpec::FileculeGds => {
            Box::new(FileculeGds::new(trace, set, capacity, CostModel::Uniform))
        }
        PolicySpec::FileFifo => Box::new(FileFifo::new(trace, capacity)),
        PolicySpec::FileLfu => Box::new(FileLfu::new(trace, capacity)),
        PolicySpec::FileSize => Box::new(FileSize::new(trace, capacity)),
        PolicySpec::GdsUniform => {
            Box::new(GreedyDualSize::new(trace, capacity, CostModel::Uniform))
        }
        PolicySpec::GdsSize => Box::new(GreedyDualSize::new(trace, capacity, CostModel::Size)),
        PolicySpec::BundleAffinity => Box::new(BundleAffinity::new(trace, set, capacity)),
        PolicySpec::FileLru2 => Box::new(FileLruK::new(trace, capacity, 2)),
        PolicySpec::SuccessorPrefetch => Box::new(SuccessorPrefetch::new(trace, capacity, 4)),
        PolicySpec::WorkingSetPrefetch => Box::new(WorkingSetPrefetch::new(trace, capacity, 16)),
        PolicySpec::FileSlru => Box::new(Slru::file(trace, capacity)),
        PolicySpec::FileculeSlru => Box::new(Slru::filecule(trace, set, capacity)),
        PolicySpec::FileLfuda => Box::new(Lfuda::file(trace, capacity)),
        PolicySpec::FileculeLfuda => Box::new(Lfuda::filecule(trace, set, capacity)),
        PolicySpec::FileTinyLfu => Box::new(TinyLfu::file(trace, capacity)),
        PolicySpec::FileculeTinyLfu => Box::new(TinyLfu::filecule(trace, set, capacity)),
        PolicySpec::BeladyMin | PolicySpec::FileculeBelady => {
            unreachable!("offline specs are handled by the log-aware constructors")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filecule_core::identify;
    use hep_trace::{SynthConfig, TraceSynthesizer};

    #[test]
    fn every_key_round_trips() {
        for spec in PolicySpec::ALL {
            assert_eq!(PolicySpec::parse(spec.key()), Some(spec), "{spec}");
        }
    }

    #[test]
    fn cli_aliases_parse() {
        for (alias, want) in [
            ("fifo", PolicySpec::FileFifo),
            ("lfu", PolicySpec::FileLfu),
            ("size", PolicySpec::FileSize),
            ("gds", PolicySpec::GdsUniform),
            ("landlord", PolicySpec::GdsUniform),
            ("lru2", PolicySpec::FileLru2),
            ("belady", PolicySpec::BeladyMin),
            ("bundle", PolicySpec::BundleAffinity),
            ("successor", PolicySpec::SuccessorPrefetch),
            ("workingset", PolicySpec::WorkingSetPrefetch),
            ("slru", PolicySpec::FileSlru),
            ("lfuda", PolicySpec::FileLfuda),
            ("tinylfu", PolicySpec::FileTinyLfu),
        ] {
            assert_eq!(PolicySpec::parse(alias), Some(want), "{alias}");
        }
        assert_eq!(PolicySpec::parse("nonsense"), None);
    }

    #[test]
    fn parse_list_subsets_and_all() {
        let subset = PolicySpec::parse_list("file-lru, filecule-lru").unwrap();
        assert_eq!(subset, vec![PolicySpec::FileLru, PolicySpec::FileculeLru]);
        assert_eq!(PolicySpec::parse_list("all").unwrap().len(), 20);
        assert_eq!(PolicySpec::parse_list("").unwrap().len(), 20);
        assert!(PolicySpec::parse_list("file-lru,bogus").is_err());
    }

    #[test]
    fn modern_family_at_both_granularities() {
        for (spec, gran) in [
            (PolicySpec::FileSlru, SpecGranularity::File),
            (PolicySpec::FileculeSlru, SpecGranularity::Filecule),
            (PolicySpec::FileLfuda, SpecGranularity::File),
            (PolicySpec::FileculeLfuda, SpecGranularity::Filecule),
            (PolicySpec::FileTinyLfu, SpecGranularity::File),
            (PolicySpec::FileculeTinyLfu, SpecGranularity::Filecule),
        ] {
            assert_eq!(spec.granularity(), gran, "{spec}");
            assert!(spec.is_partition_independent(), "{spec}");
        }
        for spec in [
            PolicySpec::BundleAffinity,
            PolicySpec::FileLru2,
            PolicySpec::SuccessorPrefetch,
            PolicySpec::WorkingSetPrefetch,
            PolicySpec::BeladyMin,
            PolicySpec::FileculeBelady,
        ] {
            assert!(!spec.is_partition_independent(), "{spec}");
        }
    }

    #[test]
    fn built_policy_names_match_spec_keys_for_modern_family() {
        let t = TraceSynthesizer::new(SynthConfig::small(93)).generate();
        let set = identify(&t);
        let log = ReplayLog::build(&t);
        for spec in [
            PolicySpec::FileSlru,
            PolicySpec::FileculeSlru,
            PolicySpec::FileLfuda,
            PolicySpec::FileculeLfuda,
            PolicySpec::FileTinyLfu,
            PolicySpec::FileculeTinyLfu,
        ] {
            let p = build_policy_from_log(spec, &log, &t, &set, hep_trace::TB);
            assert_eq!(p.name(), spec.key());
        }
    }

    #[test]
    fn built_policies_report_expected_names() {
        let t = TraceSynthesizer::new(SynthConfig::small(91)).generate();
        let set = identify(&t);
        let log = ReplayLog::build(&t);
        for spec in PolicySpec::ALL {
            let p = build_policy_from_log(spec, &log, &t, &set, hep_trace::TB);
            assert!(!p.name().is_empty(), "{spec}");
            assert_eq!(p.capacity(), hep_trace::TB, "{spec}");
        }
    }

    #[test]
    fn belady_from_log_skips_materialization() {
        let t = TraceSynthesizer::new(SynthConfig::small(92)).generate();
        let set = identify(&t);
        let log = ReplayLog::build(&t);
        let before = hep_trace::materialization_count();
        let _ = build_policy_from_log(PolicySpec::BeladyMin, &log, &t, &set, hep_trace::TB);
        let _ = build_policy_from_log(PolicySpec::FileculeBelady, &log, &t, &set, hep_trace::TB);
        assert_eq!(hep_trace::materialization_count(), before);
    }
}
