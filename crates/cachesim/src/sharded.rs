//! Segment-sharded concurrent replay engine.
//!
//! [`Simulator::run_spec`] splits a cache into `shards` independent
//! segments: every cacheable object (file, or whole filecule at filecule
//! granularity) hashes to exactly one segment, each segment is an
//! independent policy instance with its share of the capacity, and each
//! segment replays the event stream filtered to its own objects. The
//! engine consumes any [`EventSource`] one chunk at a time: each chunk is
//! partitioned into per-segment batches (tagged with global stream
//! indices), the batches drain through the per-segment policies in
//! parallel, and per-segment [`SimReport`] partials are merged in segment
//! order at the end — so a disk-backed streamed source never has more
//! than one chunk of events resident.
//!
//! ## Determinism contract
//!
//! For partition-independent specs
//! ([`PolicySpec::is_partition_independent`]) the engine guarantees,
//! bit-for-bit:
//!
//! 1. **`shards = 1` is the monolithic engine.** One segment holds the
//!    whole capacity and replays the unfiltered stream — the exact
//!    [`Simulator::run`] path.
//! 2. **Thread count never matters.** Segments share no mutable state, so
//!    replaying them on 1 or N threads (or in any order) yields the same
//!    partials; the merge is a fixed-order sum.
//! 3. **Parallel partitioned replay ≡ serial dispatch.** Each event
//!    reaches its segment's policy instance in global stream order with
//!    its global index (warmup cutoffs and fault-hook keys included), and
//!    chunk boundaries are invisible — a segment's event subsequence is
//!    identical at any chunk size. The merged report equals a serial pass
//!    dispatching each event to the same per-segment instances. The
//!    golden suite pins the digests.
//!
//! Specs that are *not* partition-independent (prefetchers, bundle
//! affinity, LRU-2, offline Belady) silently fall back to one monolithic
//! segment — correct results, no intra-policy parallelism.
//!
//! ## Trace-free streaming
//!
//! [`Simulator::run_spec_stream`]/[`Simulator::run_specs_stream`] are the
//! fully out-of-core entry points: they take only an [`EventSource`] and
//! a [`FileculeSet`] (no `Trace` anywhere), building every policy through
//! [`build_policy_stream`]. For the offline Belady pair on a disk-backed
//! source ([`EventSource::is_out_of_core`]) they take the single-decode
//! path: the stream is decoded exactly once into a raw
//! [`SpillLog`](hep_trace::SpillLog), the next-use index is derived from
//! the spill by backward block scan
//! ([`BeladyMin::from_spill`]), and the simulation replays the spill —
//! no second FCTB2 decode.
//!
//! ## Capacity split
//!
//! `capacity / shards` per segment, with the remainder distributed one
//! byte each to the lowest-numbered segments ([`split_capacity`]), so
//! segment capacities always sum exactly to the configured total.

use crate::faults_hook::ColdStorageFaults;
use crate::policy::belady::{BeladyMin, FileculeBelady};
use crate::policy::Policy;
use crate::sim::{replay_source, FaultHook, FaultStats, ReplayAccum, SimError, SimReport};
use crate::spec::{build_policy_from_source, build_policy_stream, PolicySpec, SpecGranularity};
use crate::Simulator;
use filecule_core::FileculeSet;
use hep_runctx::{maybe_install, RunCtx};
use hep_trace::{AccessEvent, EventSource, FileId, SpillLog, Trace};
use rayon::prelude::*;
use std::time::Instant;

/// The splitmix64 finalizer: a cheap, well-mixed 64 → 64 bit permutation,
/// so consecutive object ids spread evenly over segments.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-segment byte capacities: `capacity / shards` each, remainder
/// distributed to the low segments. Sums exactly to `capacity`.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn split_capacity(capacity: u64, shards: usize) -> Vec<u64> {
    assert!(shards >= 1, "split_capacity: shards must be >= 1");
    let n = shards as u64;
    let base = capacity / n;
    let rem = capacity % n;
    (0..n).map(|i| base + u64::from(i < rem)).collect()
}

/// Precomputed file → segment map for one sharded run.
///
/// At file granularity each file hashes independently; at filecule
/// granularity every member of a filecule hashes by the *group* id, so a
/// group never spans segments (files outside the partition hash by their
/// own id — they bypass every cache anyway).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    seg_of_file: Vec<u16>,
    shards: usize,
}

impl ShardPlan {
    /// Segment map at file granularity.
    pub fn by_file(n_files: usize, shards: usize) -> Self {
        Self::check(shards);
        Self {
            seg_of_file: (0..n_files)
                .map(|f| (mix64(f as u64) % shards as u64) as u16)
                .collect(),
            shards,
        }
    }

    /// Segment map at filecule granularity over the partition `set`.
    pub fn by_filecule(set: &FileculeSet, n_files: usize, shards: usize) -> Self {
        Self::check(shards);
        let mut seg_of_file: Vec<u16> = (0..n_files)
            .map(|f| (mix64(f as u64) % shards as u64) as u16)
            .collect();
        for g in set.ids() {
            let s = (mix64(u64::from(g.0)) % shards as u64) as u16;
            for &f in set.files(g) {
                seg_of_file[f.index()] = s;
            }
        }
        Self {
            seg_of_file,
            shards,
        }
    }

    /// Segment map matching `spec`'s granularity.
    pub fn for_spec(spec: PolicySpec, set: &FileculeSet, n_files: usize, shards: usize) -> Self {
        match spec.granularity() {
            SpecGranularity::File => Self::by_file(n_files, shards),
            SpecGranularity::Filecule => Self::by_filecule(set, n_files, shards),
        }
    }

    fn check(shards: usize) {
        assert!(shards >= 1, "ShardPlan: shards must be >= 1");
        assert!(
            shards <= usize::from(u16::MAX),
            "ShardPlan: shards must fit in u16"
        );
    }

    /// Segment owning `file`.
    pub fn segment_of(&self, file: FileId) -> usize {
        usize::from(self.seg_of_file[file.index()])
    }

    /// Number of segments.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

/// Sum per-segment partials in segment order into one report. Every
/// counter is an exact integer sum and segments own disjoint objects, so
/// the merge loses nothing.
fn merge_partials(partials: Vec<(SimReport, FaultStats)>) -> (SimReport, FaultStats) {
    // Every segment runs the same policy at the same granularity, so all
    // partials carry the same name — keep it so shards=1 and shards=N
    // runs report identically.
    let policy = partials
        .first()
        .map(|(r, _)| r.policy.clone())
        .unwrap_or_default();
    let mut report = SimReport {
        policy,
        capacity: 0,
        requests: 0,
        hits: 0,
        misses: 0,
        cold_misses: 0,
        bypasses: 0,
        bytes_requested: 0,
        bytes_fetched: 0,
        bytes_evicted: 0,
    };
    let mut faults = FaultStats::default();
    for (r, f) in partials {
        report.capacity += r.capacity;
        report.requests += r.requests;
        report.hits += r.hits;
        report.misses += r.misses;
        report.cold_misses += r.cold_misses;
        report.bypasses += r.bypasses;
        report.bytes_requested += r.bytes_requested;
        report.bytes_fetched += r.bytes_fetched;
        report.bytes_evicted += r.bytes_evicted;
        faults.failed_fetches += f.failed_fetches;
        faults.delayed_fetches += f.delayed_fetches;
        faults.fault_delay_secs += f.fault_delay_secs;
    }
    (report, faults)
}

/// One segment of a sharded run: its policy instance, its accounting
/// accumulator, and a reusable batch buffer of `(global index, event)`
/// pairs partitioned out of the current chunk.
struct SegState<'s> {
    policy: Box<dyn Policy + Send>,
    acc: ReplayAccum<'s>,
    batch: Vec<(usize, AccessEvent)>,
}

impl Simulator {
    /// Sharded spec-level replay: build one policy instance per segment
    /// (capacity split by [`split_capacity`]) and replay each segment's
    /// events through it, in parallel, merging the partial reports.
    /// With `shards = 1` (the default) — or for specs that are not
    /// partition-independent — this is exactly the monolithic
    /// [`Simulator::run`] on a freshly built policy.
    pub fn run_spec(
        &self,
        source: &dyn EventSource,
        trace: &Trace,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
    ) -> Result<SimReport, SimError> {
        maybe_install(self.threads(), || {
            self.run_spec_inner(source, trace, set, spec, capacity, None)
                .map(|(report, _)| report)
        })
    }

    /// Like [`Simulator::run_spec`], with an optional [`FaultHook`]
    /// consulted on every miss (keyed by global stream position, so fault
    /// outcomes are shard-invariant too).
    pub fn run_spec_hooked(
        &self,
        source: &dyn EventSource,
        trace: &Trace,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
        hook: Option<&dyn FaultHook>,
    ) -> Result<(SimReport, FaultStats), SimError> {
        maybe_install(self.threads(), || {
            self.run_spec_inner(source, trace, set, spec, capacity, hook)
        })
    }

    /// The one [`RunCtx`]-taking sharded entry point: adopts the
    /// context's metrics/shards/threads and adapts `ctx.faults` through
    /// [`ColdStorageFaults`].
    pub fn run_spec_ctx(
        &self,
        source: &dyn EventSource,
        trace: &Trace,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
        ctx: &RunCtx<'_>,
    ) -> Result<(SimReport, FaultStats), SimError> {
        let sim = self.clone().with_ctx(ctx);
        match ctx.faults {
            Some(plan) => {
                let hook = ColdStorageFaults::new(plan, trace);
                sim.run_spec_hooked(source, trace, set, spec, capacity, Some(&hook))
            }
            None => sim.run_spec_hooked(source, trace, set, spec, capacity, None),
        }
    }

    /// Replay every spec over the shared source, composing across-policy
    /// and within-policy (segment) parallelism under one rayon budget: the
    /// whole pass runs inside the simulator's thread pool (when
    /// [`Simulator::with_threads`] is set), and nested segment `par_iter`s
    /// draw from that same pool instead of oversubscribing cores. On
    /// failure, the error of the first failing spec (in slice order) is
    /// returned deterministically.
    pub fn run_specs(
        &self,
        source: &dyn EventSource,
        trace: &Trace,
        set: &FileculeSet,
        specs: &[PolicySpec],
        capacity: u64,
    ) -> Result<Vec<SimReport>, SimError> {
        let results: Vec<Result<SimReport, SimError>> = maybe_install(self.threads(), || {
            specs
                .par_iter()
                .map(|&spec| {
                    self.run_spec_inner(source, trace, set, spec, capacity, None)
                        .map(|(report, _)| report)
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Trace-free sharded spec replay: like [`Simulator::run_spec`] but
    /// built entirely from the [`EventSource`] (file-size table, per-job
    /// user table) and the filecule partition. Fails with
    /// [`SimError::Unsupported`] when the spec needs trace data the
    /// source does not carry (currently
    /// [`PolicySpec::WorkingSetPrefetch`] on a source without
    /// [`EventSource::job_users`]), and with [`SimError::Stream`] when a
    /// disk-backed source hits a post-open I/O failure.
    ///
    /// For the offline Belady pair on an out-of-core source this takes
    /// the single-decode spill path — see the module docs.
    pub fn run_spec_stream(
        &self,
        source: &dyn EventSource,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
    ) -> Result<SimReport, SimError> {
        maybe_install(self.threads(), || {
            self.run_spec_stream_inner(source, set, spec, capacity, None)
                .map(|(report, _)| report)
        })
    }

    /// Replay every spec over the shared source without a `Trace`, under
    /// one rayon budget — the trace-free analogue of
    /// [`Simulator::run_specs`]. On failure, the error of the first
    /// failing spec (in slice order) is returned deterministically.
    pub fn run_specs_stream(
        &self,
        source: &dyn EventSource,
        set: &FileculeSet,
        specs: &[PolicySpec],
        capacity: u64,
    ) -> Result<Vec<SimReport>, SimError> {
        let results: Vec<Result<SimReport, SimError>> = maybe_install(self.threads(), || {
            specs
                .par_iter()
                .map(|&spec| {
                    self.run_spec_stream_inner(source, set, spec, capacity, None)
                        .map(|(report, _)| report)
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Trace-backed inner runner: the policy builder borrows the trace,
    /// so it only fails when a disk-backed source hits a post-open I/O
    /// failure (while scanning for Belady or during replay).
    fn run_spec_inner(
        &self,
        source: &dyn EventSource,
        trace: &Trace,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
        hook: Option<&dyn FaultHook>,
    ) -> Result<(SimReport, FaultStats), SimError> {
        self.run_spec_core(source, set, spec, capacity, hook, &|cap| {
            build_policy_from_source(spec, source, trace, set, cap)
        })
    }

    /// Trace-free inner runner: validates source-carried data up front
    /// and routes out-of-core Belady through the single-decode spill
    /// path.
    fn run_spec_stream_inner(
        &self,
        source: &dyn EventSource,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
        hook: Option<&dyn FaultHook>,
    ) -> Result<(SimReport, FaultStats), SimError> {
        if matches!(spec, PolicySpec::BeladyMin | PolicySpec::FileculeBelady)
            && source.is_out_of_core()
        {
            return self.run_spilled_belady(source, set, spec, capacity, hook);
        }
        if matches!(spec, PolicySpec::WorkingSetPrefetch) && source.job_users().is_none() {
            // Surface the unsupported-spec case before building anything,
            // so per-segment builds below never duplicate the check.
            build_policy_stream(spec, source, set, capacity)?;
            unreachable!("build_policy_stream must fail without job_users");
        }
        self.run_spec_core(source, set, spec, capacity, hook, &|cap| {
            build_policy_stream(spec, source, set, cap)
        })
    }

    /// The single-decode offline-Belady path for disk-backed sources:
    /// decode the stream exactly once into a raw [`SpillLog`], derive the
    /// next-use index from the spill (backward block scan over raw
    /// records), and replay the spill — the FCTB2 payload is never
    /// decoded a second time.
    fn run_spilled_belady(
        &self,
        source: &dyn EventSource,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
        hook: Option<&dyn FaultHook>,
    ) -> Result<(SimReport, FaultStats), SimError> {
        let started = self.metrics().is_enabled().then(Instant::now);
        let spill = SpillLog::record(source)?;
        let mut policy: Box<dyn Policy + Send> = match spec {
            PolicySpec::BeladyMin => Box::new(BeladyMin::from_spill(&spill, capacity)?),
            PolicySpec::FileculeBelady => {
                Box::new(FileculeBelady::from_spill(&spill, set, capacity)?)
            }
            _ => unreachable!("run_spilled_belady is only reached for Belady specs"),
        };
        let (report, faults) = replay_source(&spill, policy.as_mut(), hook, self.options())?;
        if let Some(t0) = started {
            self.emit_run_metrics(
                &report,
                &faults,
                t0.elapsed().as_secs_f64(),
                spill.len(),
                hook,
            );
        }
        Ok((report, faults))
    }

    /// Core sharded replay; assumes the caller already installed the
    /// thread pool (if any), so nested `par_iter`s compose under it.
    /// Everything trace-shaped comes through `build` (one call per
    /// segment) or off the source itself, so the trace-backed and
    /// trace-free runners share this body.
    fn run_spec_core(
        &self,
        source: &dyn EventSource,
        set: &FileculeSet,
        spec: PolicySpec,
        capacity: u64,
        hook: Option<&dyn FaultHook>,
        build: &(dyn Fn(u64) -> Result<Box<dyn Policy + Send>, SimError> + Sync),
    ) -> Result<(SimReport, FaultStats), SimError> {
        let shards = self.shards();
        if shards <= 1 || !spec.is_partition_independent() {
            let mut policy = build(capacity)?;
            let started = self.metrics().is_enabled().then(Instant::now);
            let (report, faults) = replay_source(source, policy.as_mut(), hook, self.options())?;
            if let Some(t0) = started {
                self.emit_run_metrics(
                    &report,
                    &faults,
                    t0.elapsed().as_secs_f64(),
                    source.len(),
                    hook,
                );
            }
            return Ok((report, faults));
        }
        let started = self.metrics().is_enabled().then(Instant::now);
        let plan = ShardPlan::for_spec(spec, set, source.n_files(), shards);
        let caps = split_capacity(capacity, shards);
        let options = self.options();
        let sizes = source.file_sizes();
        let mut segs: Vec<SegState<'_>> = (0..shards)
            .map(|s| {
                let policy = build(caps[s])?;
                let acc = ReplayAccum::new(policy.as_ref(), source.len(), sizes, options);
                Ok(SegState {
                    policy,
                    acc,
                    batch: Vec::new(),
                })
            })
            .collect::<Result<_, SimError>>()?;
        // One pass over the stream: partition each chunk into per-segment
        // batches tagged with global indices, then drain the batches in
        // parallel. Each segment sees its subsequence in global order with
        // global indices, so results are chunk-size- and thread-invariant.
        // Per-segment stepping is infallible — only the source iteration
        // itself can fail, and its error propagates directly.
        source.for_each_chunk(&mut |base, chunk| {
            for (k, ev) in chunk.iter().enumerate() {
                segs[plan.segment_of(ev.file)].batch.push((base + k, *ev));
            }
            segs.par_iter_mut().for_each(|seg| {
                let SegState { policy, acc, batch } = seg;
                for (i, ev) in batch.drain(..) {
                    acc.step(i, &ev, policy.as_mut(), hook);
                }
            });
        })?;
        let partials: Vec<(SimReport, FaultStats)> =
            segs.into_iter().map(|seg| seg.acc.finish()).collect();
        let (report, faults) = merge_partials(partials);
        if let Some(t0) = started {
            self.emit_run_metrics(
                &report,
                &faults,
                t0.elapsed().as_secs_f64(),
                source.len(),
                hook,
            );
        }
        Ok((report, faults))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_policy_from_log;
    use filecule_core::identify;
    use hep_trace::{ReplayLog, SynthConfig, TraceSynthesizer, TB};

    fn small() -> (Trace, FileculeSet, ReplayLog) {
        let trace = TraceSynthesizer::new(SynthConfig::small(7)).generate();
        let set = identify(&trace);
        let log = ReplayLog::build(&trace);
        (trace, set, log)
    }

    #[test]
    fn split_capacity_sums_and_low_segments_take_remainder() {
        assert_eq!(split_capacity(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_capacity(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(split_capacity(3, 5), vec![1, 1, 1, 0, 0]);
        for (cap, n) in [(0u64, 1), (17, 3), (TB, 16), (TB + 13, 7)] {
            let parts = split_capacity(cap, n);
            assert_eq!(parts.len(), n);
            assert_eq!(parts.iter().sum::<u64>(), cap);
            assert!(parts.windows(2).all(|w| w[0] >= w[1]), "monotone split");
        }
    }

    #[test]
    fn filecule_plan_keeps_groups_together() {
        let (trace, set, _) = small();
        let plan = ShardPlan::by_filecule(&set, trace.n_files(), 8);
        for g in set.ids() {
            let segs: std::collections::BTreeSet<usize> =
                set.files(g).iter().map(|&f| plan.segment_of(f)).collect();
            assert_eq!(segs.len(), 1, "filecule {} spans segments", g.0);
        }
    }

    #[test]
    fn file_plan_uses_every_segment_on_real_traces() {
        let (trace, _, _) = small();
        let plan = ShardPlan::by_file(trace.n_files(), 8);
        let mut hit = vec![false; 8];
        for f in 0..trace.n_files() {
            hit[plan.segment_of(FileId(f as u32))] = true;
        }
        assert!(hit.iter().all(|&h| h), "splitmix spread misses a segment");
    }

    #[test]
    fn one_shard_is_the_monolithic_engine() {
        let (trace, set, log) = small();
        let cap = TB / 100;
        let sim = Simulator::new();
        for spec in [PolicySpec::FileLru, PolicySpec::FileculeLru] {
            let mono = sim
                .run(
                    &log,
                    build_policy_from_log(spec, &log, &trace, &set, cap).as_mut(),
                )
                .unwrap();
            let sharded = sim.run_spec(&log, &trace, &set, spec, cap).unwrap();
            assert_eq!(mono, sharded, "{spec}");
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let (trace, set, log) = small();
        let cap = TB / 100;
        for spec in [PolicySpec::FileLru, PolicySpec::FileculeGds] {
            let base = Simulator::new()
                .with_shards(4)
                .run_spec(&log, &trace, &set, spec, cap)
                .unwrap();
            for threads in [1, 2, 8] {
                let r = Simulator::new()
                    .with_shards(4)
                    .with_threads(threads)
                    .run_spec(&log, &trace, &set, spec, cap)
                    .unwrap();
                assert_eq!(base, r, "{spec} @ {threads} threads");
            }
        }
    }

    #[test]
    fn sharded_replay_matches_serial_dispatch() {
        // Independent serial reference: one pass over the log in global
        // order, each event dispatched to its segment's policy instance.
        let (trace, set, log) = small();
        let cap = TB / 100;
        let shards = 4;
        for spec in [PolicySpec::FileLru, PolicySpec::FileculeLru] {
            let sharded = Simulator::new()
                .with_shards(shards)
                .run_spec(&log, &trace, &set, spec, cap)
                .unwrap();

            let plan = ShardPlan::for_spec(spec, &set, trace.n_files(), shards);
            let caps = split_capacity(cap, shards);
            let mut instances: Vec<_> = (0..shards)
                .map(|s| build_policy_from_log(spec, &log, &trace, &set, caps[s]))
                .collect();
            let mut seen = vec![false; log.n_files()];
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut cold = 0u64;
            let mut fetched = 0u64;
            for i in 0..log.len() {
                let ev = log.event(i);
                let r = instances[plan.segment_of(ev.file)].access(&ev);
                if r.hit {
                    hits += 1;
                } else {
                    misses += 1;
                    if !seen[ev.file.index()] {
                        cold += 1;
                    }
                }
                fetched += r.bytes_fetched;
                seen[ev.file.index()] = true;
            }
            assert_eq!(sharded.hits, hits, "{spec}");
            assert_eq!(sharded.misses, misses, "{spec}");
            assert_eq!(sharded.cold_misses, cold, "{spec}");
            assert_eq!(sharded.bytes_fetched, fetched, "{spec}");
        }
    }

    #[test]
    fn partition_dependent_specs_fall_back_to_monolithic() {
        let (trace, set, log) = small();
        let cap = TB / 100;
        let sim8 = Simulator::new().with_shards(8);
        for spec in [PolicySpec::BeladyMin, PolicySpec::SuccessorPrefetch] {
            let mono = Simulator::new()
                .run_spec(&log, &trace, &set, spec, cap)
                .unwrap();
            let sharded = sim8.run_spec(&log, &trace, &set, spec, cap).unwrap();
            assert_eq!(mono, sharded, "{spec}");
        }
    }

    #[test]
    fn run_specs_matches_individual_run_spec() {
        let (trace, set, log) = small();
        let cap = TB / 100;
        let sim = Simulator::new().with_shards(4).with_threads(2);
        let specs = [
            PolicySpec::FileLru,
            PolicySpec::FileculeLru,
            PolicySpec::FileTinyLfu,
        ];
        let grid = sim.run_specs(&log, &trace, &set, &specs, cap).unwrap();
        for (spec, got) in specs.iter().zip(&grid) {
            let one = sim.run_spec(&log, &trace, &set, *spec, cap).unwrap();
            assert_eq!(&one, got, "{spec}");
        }
    }

    #[test]
    fn run_spec_stream_matches_trace_backed() {
        // The trace-free builder path must be indistinguishable from the
        // trace-backed one whenever the source carries the needed tables.
        let (trace, set, log) = small();
        let cap = TB / 100;
        let sim = Simulator::new().with_shards(4);
        for spec in [
            PolicySpec::FileLru,
            PolicySpec::FileculeLru,
            PolicySpec::FileculeGds,
            PolicySpec::FileTinyLfu,
            PolicySpec::BeladyMin,
            PolicySpec::FileculeBelady,
        ] {
            let trace_backed = sim.run_spec(&log, &trace, &set, spec, cap).unwrap();
            let streamed = sim
                .run_spec_stream(&log, &set, spec, cap)
                .expect("ReplayLog carries everything these specs need");
            assert_eq!(trace_backed, streamed, "{spec}");
        }
    }

    #[test]
    fn run_specs_stream_matches_individual_runs() {
        let (_, set, log) = small();
        let cap = TB / 100;
        let sim = Simulator::new().with_shards(2).with_threads(2);
        let specs = [PolicySpec::FileLru, PolicySpec::FileculeSlru];
        let grid = sim
            .run_specs_stream(&log, &set, &specs, cap)
            .expect("stream grid");
        for (spec, got) in specs.iter().zip(&grid) {
            let one = sim.run_spec_stream(&log, &set, *spec, cap).expect("one");
            assert_eq!(&one, got, "{spec}");
        }
    }

    #[test]
    fn run_spec_stream_rejects_workingset_without_user_table() {
        // ReplayLog does not carry per-job users, so the one trace-shaped
        // policy must fail loudly instead of building a wrong instance.
        let (_, set, log) = small();
        let err = Simulator::new()
            .run_spec_stream(&log, &set, PolicySpec::WorkingSetPrefetch, TB)
            .expect_err("ReplayLog has no per-job user table");
        assert!(
            err.to_string().contains("user table"),
            "unhelpful error: {err}"
        );
        assert!(matches!(err, SimError::Unsupported(_)));
    }

    #[test]
    fn run_spec_ctx_adopts_context_knobs() {
        let (trace, set, log) = small();
        let cap = TB / 100;
        let ctx = RunCtx::new().with_shards(4);
        let (via_ctx, stats) = Simulator::new()
            .run_spec_ctx(&log, &trace, &set, PolicySpec::FileLru, cap, &ctx)
            .unwrap();
        let direct = Simulator::new()
            .with_shards(4)
            .run_spec(&log, &trace, &set, PolicySpec::FileLru, cap)
            .unwrap();
        assert_eq!(via_ctx, direct);
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn sharded_fault_outcomes_are_shard_invariant_given_misses() {
        // The hook is keyed by global log index, so for a fixed shard
        // count the fault stats are identical at any thread count.
        let (trace, set, log) = small();
        let cap = TB / 100;
        let plan =
            hep_faults::FaultPlan::for_trace(&hep_faults::FaultConfig::severity(0.3), &trace, 7);
        let ctx1 = RunCtx::new()
            .with_faults(&plan)
            .with_shards(4)
            .with_threads(1);
        let ctx8 = RunCtx::new()
            .with_faults(&plan)
            .with_shards(4)
            .with_threads(8);
        let a = Simulator::new()
            .run_spec_ctx(&log, &trace, &set, PolicySpec::FileLru, cap, &ctx1)
            .unwrap();
        let b = Simulator::new()
            .run_spec_ctx(&log, &trace, &set, PolicySpec::FileLru, cap, &ctx8)
            .unwrap();
        assert_eq!(a, b);
        assert!(a.0.misses > 0);
    }
}
