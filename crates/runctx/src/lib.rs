//! # hep-runctx
//!
//! One context struct for every simulator entry point.
//!
//! The workspace used to grow a 2×2 sibling family per operation —
//! `foo`, `foo_metrics`, `foo_faulty`, `foo_faulty_metrics` — and the
//! sharded cache engine would have minted a third axis (threads/shards)
//! and eight siblings per operation. [`RunCtx`] collapses the axes into
//! one value: a metrics handle, an optional fault plan, and the
//! parallelism knobs. Each operation now has exactly one `*_ctx` entry
//! point taking `&RunCtx`; the old siblings survive as `#[deprecated]`
//! one-line shims.
//!
//! ```
//! use hep_runctx::RunCtx;
//! use hep_obs::Metrics;
//!
//! let ctx = RunCtx::new();                   // no metrics, no faults, serial
//! assert!(ctx.faults.is_none());
//! let ctx = RunCtx::new()
//!     .with_metrics(Metrics::enabled())
//!     .with_shards(4)
//!     .with_threads(2);
//! assert_eq!(ctx.shards, 4);
//! ```
//!
//! The crate sits *below* the simulators: it depends only on `hep-obs`
//! (for [`Metrics`]) and `hep-faults` (for [`FaultPlan`]), so `cachesim`,
//! `replication` and `transfer` can all take a `&RunCtx` without a
//! dependency cycle.

#![warn(missing_docs)]

use hep_faults::FaultPlan;
use hep_obs::Metrics;

/// Context threaded into every simulator entry point: what to observe,
/// what faults to inject, and how parallel to run.
///
/// Construct with [`RunCtx::new`] (or `RunCtx::default()`) and layer on
/// the builder methods. The lifetime is the borrow of the fault plan;
/// a fault-free context is `'static` and can be built inline.
#[derive(Debug, Clone)]
pub struct RunCtx<'a> {
    /// Metrics sink. Defaults to the zero-overhead disabled handle.
    pub metrics: Metrics,
    /// Fault plan to inject, or `None` for the fault-free path.
    pub faults: Option<&'a FaultPlan>,
    /// Cache-segment count for the sharded engine (`cachesim` only);
    /// 1 = the classic monolithic replay. Other simulators ignore it.
    pub shards: usize,
    /// Rayon thread budget: 0 = use the ambient/global pool unchanged,
    /// n > 0 = run the parallel parts inside a dedicated n-thread pool.
    pub threads: usize,
}

impl Default for RunCtx<'_> {
    fn default() -> Self {
        RunCtx {
            metrics: Metrics::disabled(),
            faults: None,
            shards: 1,
            threads: 0,
        }
    }
}

impl<'a> RunCtx<'a> {
    /// A fault-free, metrics-disabled, serial context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a metrics handle (enabled or disabled).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Inject faults from `plan`.
    #[must_use]
    pub fn with_faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Set the cache-segment count (≥ 1) for the sharded engine.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "RunCtx: shards must be >= 1");
        self.shards = shards;
        self
    }

    /// Set the rayon thread budget (0 = ambient pool).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Configure the **global** rayon pool to `threads` workers, once.
///
/// This is the single shared configuration path for `--threads` flags
/// (CLI `main`, `bench/src/bin/report.rs`): with each binary funneling
/// through here, nested parallelism (policy-level `run_many` over
/// segment-level sharded replay) draws from one budget instead of
/// oversubscribing cores with per-call pools.
///
/// `threads == 0` leaves the default pool alone. A second call — or a
/// call after the pool already started — is a silent no-op, matching
/// rayon's own "first configuration wins" semantics.
pub fn configure_rayon_threads(threads: usize) {
    if threads == 0 {
        return;
    }
    // AlreadyInitialized is the only possible error here; the pool that
    // won the race stays in effect, which is the behavior we want.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
}

/// Run `f` inside a dedicated `threads`-worker pool when `threads > 0`,
/// or directly on the ambient pool when `threads == 0`.
///
/// The simulators call this around their outermost `par_iter`, so a
/// `RunCtx::with_threads(n)` bounds *all* nested rayon work under one
/// budget (rayon pools compose: nested `par_iter`s inside `install`
/// stay on the installed pool).
pub fn maybe_install<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    if threads == 0 {
        return f();
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("RunCtx: failed to build thread pool");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_faults::FaultConfig;

    #[test]
    fn default_is_serial_fault_free_and_quiet() {
        let ctx = RunCtx::new();
        assert!(ctx.faults.is_none());
        assert!(!ctx.metrics.is_enabled());
        assert_eq!(ctx.shards, 1);
        assert_eq!(ctx.threads, 0);
    }

    #[test]
    fn builders_layer() {
        let plan = FaultPlan::build(&FaultConfig::default(), 2, 1_000, 1);
        let ctx = RunCtx::new()
            .with_metrics(Metrics::enabled())
            .with_faults(&plan)
            .with_shards(8)
            .with_threads(3);
        assert!(ctx.metrics.is_enabled());
        assert!(ctx.faults.is_some());
        assert_eq!(ctx.shards, 8);
        assert_eq!(ctx.threads, 3);
    }

    #[test]
    #[should_panic(expected = "shards must be >= 1")]
    fn zero_shards_rejected() {
        let _ = RunCtx::new().with_shards(0);
    }

    #[test]
    fn maybe_install_runs_closure_both_ways() {
        assert_eq!(maybe_install(0, || 40 + 2), 42);
        assert_eq!(maybe_install(2, || 40 + 2), 42);
    }

    #[test]
    fn configure_zero_is_noop_and_repeat_calls_tolerated() {
        configure_rayon_threads(0);
        configure_rayon_threads(2);
        configure_rayon_threads(4); // second call: silently ignored
    }
}
