//! Empirical cumulative distribution functions.
//!
//! Used for calibration checks (does the synthetic files-per-job CDF match
//! the paper's Figure 1 shape?) and for the KS goodness-of-fit distance in
//! [`crate::fit`].

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    /// Sorted sample values.
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample. NaNs are rejected.
    ///
    /// # Panics
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF needs a non-empty sample");
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "ECDF sample must not contain NaN"
        );
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted: sample }
    }

    /// Build from any iterator of values convertible to `f64`.
    #[allow(clippy::should_implement_trait, clippy::same_name_method)]
    pub fn from_iter<I, T>(iter: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<f64>,
    {
        Self::new(iter.into_iter().map(Into::into).collect())
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)` — the complementary CDF used for the paper's popularity
    /// tail plots.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The `q`-quantile, `q ∈ [0, 1]`, by the nearest-rank method.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum observed value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observed value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// The sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluate the CDF at `n` evenly spaced points spanning the sample
    /// range; convenient for plotting/reporting.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least 2 curve points");
        let (lo, hi) = (self.min(), self.max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basic() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(10.0), 1.0);
    }

    #[test]
    fn ccdf_complements() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        for x in [0.0, 1.5, 3.0, 5.0] {
            assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 3.0, 2.0]);
        let mut prev = -1.0;
        for i in 0..60 {
            let x = i as f64 * 0.1;
            let c = e.cdf(x);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.median(), 50.0);
    }

    #[test]
    fn min_max() {
        let e = Ecdf::new(vec![3.0, -1.0, 7.0]);
        assert_eq!(e.min(), -1.0);
        assert_eq!(e.max(), 7.0);
    }

    #[test]
    fn duplicates_handled() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0]);
        assert_eq!(e.cdf(1.9), 0.0);
        assert_eq!(e.cdf(2.0), 1.0);
    }

    #[test]
    fn curve_spans_range() {
        let e = Ecdf::new(vec![0.0, 10.0]);
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].0, 0.0);
        assert_eq!(c[10].0, 10.0);
        assert_eq!(c[10].1, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn nan_panics() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
