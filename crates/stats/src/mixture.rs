//! Finite mixtures of `f64` samplers.
//!
//! File-size distributions in DZero are multi-modal (Figure 3): a spike at
//! the 1 GB raw-file cap, per-tier lognormal bodies, and a population of
//! small metadata-like files. A weighted mixture of [`SampleF64`] components
//! captures this directly.

use crate::empirical::EmpiricalDiscrete;
use crate::SampleF64;
use rand::Rng;

/// A weighted mixture of boxed `f64` samplers.
pub struct Mixture {
    components: Vec<Box<dyn SampleF64 + Send + Sync>>,
    chooser: EmpiricalDiscrete,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .finish()
    }
}

impl Mixture {
    /// Build a mixture from `(weight, sampler)` pairs.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the weights are invalid
    /// (see [`EmpiricalDiscrete::new`]).
    pub fn new(parts: Vec<(f64, Box<dyn SampleF64 + Send + Sync>)>) -> Self {
        assert!(!parts.is_empty(), "mixture needs at least one component");
        let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
        let components: Vec<_> = parts.into_iter().map(|(_, c)| c).collect();
        Self {
            components,
            chooser: EmpiricalDiscrete::new(&weights),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the mixture has no components (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Draw one value: choose a component by weight, then sample it.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let idx = self.chooser.sample(rng);
        self.components[idx].sample_f64(rng)
    }
}

impl SampleF64 for Mixture {
    fn sample_f64(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let idx = self.chooser.sample(rng);
        self.components[idx].sample_f64(rng)
    }
}

/// A degenerate sampler that always returns the same value. Used for hard
/// caps such as the 1 GB DZero raw-file size.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub f64);

impl SampleF64 for Constant {
    fn sample_f64(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.0
    }
}

/// A uniform sampler over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Create a uniform sampler over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi);
        Self { lo, hi }
    }
}

impl SampleF64 for UniformRange {
    fn sample_f64(&self, rng: &mut dyn rand::RngCore) -> f64 {
        use rand::Rng as _;
        rng.gen_range(self.lo..self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn constant_component() {
        let m = Mixture::new(vec![(1.0, Box::new(Constant(42.0)))]);
        let mut rng = seeded_rng(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 42.0);
        }
    }

    #[test]
    fn weights_select_components() {
        let m = Mixture::new(vec![
            (9.0, Box::new(Constant(1.0))),
            (1.0, Box::new(Constant(2.0))),
        ]);
        let mut rng = seeded_rng(2);
        let n = 100_000;
        let ones = (0..n).filter(|_| m.sample(&mut rng) == 1.0).count();
        let f = ones as f64 / n as f64;
        assert!((f - 0.9).abs() < 0.01, "f = {f}");
    }

    #[test]
    fn uniform_range_bounds() {
        let u = UniformRange::new(5.0, 6.0);
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            let x = u.sample_f64(&mut rng);
            assert!((5.0..6.0).contains(&x));
        }
    }

    #[test]
    fn bimodal_file_size_shape() {
        // 70% ~small files around 100, 30% spike at 1000 (the "1 GB cap").
        let m = Mixture::new(vec![
            (0.7, Box::new(UniformRange::new(50.0, 150.0))),
            (0.3, Box::new(Constant(1000.0))),
        ]);
        let mut rng = seeded_rng(4);
        let n = 50_000;
        let spikes = (0..n).filter(|_| m.sample(&mut rng) == 1000.0).count();
        let f = spikes as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.01, "f = {f}");
    }

    #[test]
    #[should_panic]
    fn empty_mixture_panics() {
        let _ = Mixture::new(vec![]);
    }
}
