//! Truncated lognormal sampling.
//!
//! DZero file sizes (paper Section 3.1, Figure 3) are governed by two
//! domain rules rather than the classic heavy-tail file-system model:
//! events are ~250 KB and raw files are capped at 1 GB by deployment
//! policy. We model per-tier sizes as lognormal bodies truncated to a
//! `[min, max]` window, which reproduces both the bulk shape and the hard
//! cap.

use crate::SampleF64;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// A lognormal distribution truncated (by rejection) to `[min, max]`.
#[derive(Debug, Clone)]
pub struct TruncatedLogNormal {
    inner: LogNormal<f64>,
    mu: f64,
    sigma: f64,
    min: f64,
    max: f64,
}

impl TruncatedLogNormal {
    /// Create from the log-space parameters `mu`, `sigma` and the
    /// truncation window `[min, max]`.
    ///
    /// # Panics
    /// Panics if `sigma <= 0`, `min <= 0`, `min >= max`, or the window has
    /// negligible probability mass (< 1e-6), which would make rejection
    /// sampling pathological.
    pub fn new(mu: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(min > 0.0 && min < max, "need 0 < min < max");
        let mass = window_mass(mu, sigma, min, max);
        assert!(
            mass > 1e-6,
            "truncation window [{min}, {max}] has negligible mass {mass}"
        );
        let inner = LogNormal::new(mu, sigma).expect("validated parameters");
        Self {
            inner,
            mu,
            sigma,
            min,
            max,
        }
    }

    /// Convenience constructor from the *linear-space* median and an
    /// approximate shape parameter.
    pub fn from_median(median: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma, min, max)
    }

    /// Log-space location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Lower truncation bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper truncation bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Draw one sample in `[min, max]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Rejection sampling; the constructor guarantees the acceptance
        // probability is non-negligible. Clamp after a bounded number of
        // attempts so adversarial parameters cannot stall a simulation.
        for _ in 0..1024 {
            let x = self.inner.sample(rng);
            if x >= self.min && x <= self.max {
                return x;
            }
        }
        self.inner.sample(rng).clamp(self.min, self.max)
    }
}

impl SampleF64 for TruncatedLogNormal {
    fn sample_f64(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.sample(rng)
    }
}

/// Probability mass of a lognormal(mu, sigma) inside `[min, max]`.
fn window_mass(mu: f64, sigma: f64, min: f64, max: f64) -> f64 {
    normal_cdf((max.ln() - mu) / sigma) - normal_cdf((min.ln() - mu) / sigma)
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7, ample for calibration checks).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn samples_respect_bounds() {
        let d = TruncatedLogNormal::from_median(100.0, 1.0, 10.0, 1000.0);
        let mut rng = seeded_rng(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn median_roughly_recovered() {
        let d = TruncatedLogNormal::from_median(100.0, 0.5, 1.0, 10_000.0);
        let mut rng = seeded_rng(2);
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 100.0).abs() / 100.0 < 0.05, "median = {median}");
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-4);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-4);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for z in [0.1, 0.5, 1.0, 2.0] {
            let s = normal_cdf(z) + normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-6, "z={z}: {s}");
        }
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = TruncatedLogNormal::new(0.0, 1.0, 10.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn negligible_window_panics() {
        // Window far in the tail: ~zero mass.
        let _ = TruncatedLogNormal::new(0.0, 0.1, 1e6, 2e6);
    }

    #[test]
    fn hard_cap_like_dzero_raw_files() {
        // Median 800 MB, sigma 0.3, capped at 1 GB like DZero raw data.
        let gb = 1024.0 * 1024.0 * 1024.0;
        let d = TruncatedLogNormal::from_median(0.8 * gb, 0.3, 0.1 * gb, gb);
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) <= gb);
        }
    }
}
