//! Exponential sampling by inversion.
//!
//! Used for campaign inter-job gaps in the workload generator (memoryless
//! within-burst pacing).

use crate::SampleF64;
use rand::Rng;

/// An exponential distribution with the given mean.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// Create with mean `mean > 0`.
    ///
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Self { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draw one sample by inversion: `-mean * ln(1 - U)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }
}

impl SampleF64 for Exp {
    fn sample_f64(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rand::Rng::gen(rng);
        -self.mean * (1.0 - u).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn samples_nonnegative() {
        let e = Exp::new(5.0);
        let mut rng = seeded_rng(1);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn mean_recovered() {
        let e = Exp::new(3.5);
        let mut rng = seeded_rng(2);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| e.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 3.5).abs() / 3.5 < 0.02, "mean {mean}");
    }

    #[test]
    fn memoryless_smoke() {
        // P(X > 2m) should be ~ P(X > m)^2.
        let e = Exp::new(1.0);
        let mut rng = seeded_rng(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| e.sample(&mut rng)).collect();
        let p1 = xs.iter().filter(|&&x| x > 1.0).count() as f64 / n as f64;
        let p2 = xs.iter().filter(|&&x| x > 2.0).count() as f64 / n as f64;
        assert!((p2 - p1 * p1).abs() < 0.01, "p1 {p1} p2 {p2}");
    }

    #[test]
    #[should_panic]
    fn zero_mean_panics() {
        let _ = Exp::new(0.0);
    }
}
