//! Deterministic RNG plumbing.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed.
//! To keep independent model components (file sizes, arrival times, dataset
//! choice, …) statistically decoupled while still being reproducible from a
//! single master seed, we derive *child seeds* with a SplitMix64 hash of
//! `(master, label)` rather than reusing one RNG sequentially — adding a new
//! consumer then never perturbs the streams of existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The default experiment seed used across the workspace.
///
/// Mnemonic: the DZero experiment, paper year 2006.
pub const DEFAULT_SEED: u64 = 0xD0D0_2006;

/// SplitMix64 finalizer; a high-quality 64-bit mix function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent child seed from a master seed and a stream label.
///
/// The label is hashed byte-wise into the state so that textual labels
/// ("file-sizes", "arrivals", …) give uncorrelated streams.
pub fn child_seed(master: u64, label: &str) -> u64 {
    let mut state = splitmix64(master ^ 0xA5A5_5A5A_C3C3_3C3C);
    for &b in label.as_bytes() {
        state = splitmix64(state ^ u64::from(b));
    }
    state
}

/// Construct a [`StdRng`] from a `u64` seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A labelled factory of independent RNG streams, all derived from one
/// master seed.
///
/// ```
/// use hep_stats::rng::SeedStream;
/// let stream = SeedStream::new(42);
/// let mut a = stream.rng("sizes");
/// let mut b = stream.rng("arrivals");
/// // `a` and `b` are decoupled and reproducible.
/// # let _ = (&mut a, &mut b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Create a stream factory for `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this factory was built from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the child seed for `label`.
    pub fn seed(&self, label: &str) -> u64 {
        child_seed(self.master, label)
    }

    /// Build an RNG for the stream `label`.
    pub fn rng(&self, label: &str) -> StdRng {
        seeded_rng(self.seed(label))
    }

    /// Build an RNG for a numbered sub-stream of `label`, e.g. one stream
    /// per generated job.
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        seeded_rng(splitmix64(self.seed(label) ^ splitmix64(index)))
    }

    /// Derive a nested factory, for components that themselves own several
    /// streams.
    pub fn substream(&self, label: &str) -> SeedStream {
        SeedStream::new(self.seed(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seeds_differ_by_label() {
        let a = child_seed(1, "alpha");
        let b = child_seed(1, "beta");
        assert_ne!(a, b);
    }

    #[test]
    fn child_seeds_differ_by_master() {
        let a = child_seed(1, "alpha");
        let b = child_seed(2, "alpha");
        assert_ne!(a, b);
    }

    #[test]
    fn child_seed_is_deterministic() {
        assert_eq!(child_seed(99, "x"), child_seed(99, "x"));
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut r1 = seeded_rng(7);
        let mut r2 = seeded_rng(7);
        for _ in 0..32 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn stream_labels_are_decoupled() {
        let s = SeedStream::new(123);
        let mut a = s.rng("a");
        let mut b = s.rng("b");
        // The streams should not be identical (overwhelming probability).
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn indexed_streams_are_decoupled() {
        let s = SeedStream::new(123);
        let mut a = s.rng_indexed("job", 0);
        let mut b = s.rng_indexed("job", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn substream_differs_from_parent() {
        let s = SeedStream::new(5);
        let sub = s.substream("inner");
        assert_ne!(s.seed("x"), sub.seed("x"));
    }

    #[test]
    fn splitmix_is_bijective_smoke() {
        // splitmix64 is a bijection; a small sample should have no collisions.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }
}
