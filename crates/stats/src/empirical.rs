//! Weighted discrete sampling via Vose's alias method.
//!
//! The workload generator frequently draws from fixed categorical
//! distributions (data tier of a job, submitting domain per Table 2, …).
//! The alias method gives O(1) draws after O(n) setup, which matters when
//! synthesizing hundreds of thousands of jobs.

use crate::SampleIndex;
use rand::Rng;

/// A discrete distribution over `0..n` built from non-negative weights,
/// sampled in O(1) with Vose's alias method.
#[derive(Debug, Clone)]
pub struct EmpiricalDiscrete {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights: Vec<f64>,
}

impl EmpiricalDiscrete {
    /// Build from raw weights. Weights need not be normalized.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        // Scaled probabilities (mean 1).
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Self {
            prob,
            alias,
            weights: weights.to_vec(),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalized probability of category `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights[i] / total
    }

    /// Draw one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

impl SampleIndex for EmpiricalDiscrete {
    fn sample_index(&self, rng: &mut dyn rand::RngCore) -> usize {
        self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let d = EmpiricalDiscrete::new(&[1.0; 4]);
        let mut rng = seeded_rng(1);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.01, "f = {f}");
        }
    }

    #[test]
    fn skewed_weights_match_pmf() {
        let w = [8.0, 4.0, 2.0, 1.0, 1.0];
        let d = EmpiricalDiscrete::new(&w);
        let mut rng = seeded_rng(2);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            assert!((f - d.pmf(i)).abs() < 0.01, "cat {i}: {f} vs {}", d.pmf(i));
        }
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let d = EmpiricalDiscrete::new(&[1.0, 0.0, 1.0]);
        let mut rng = seeded_rng(3);
        for _ in 0..50_000 {
            assert_ne!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category() {
        let d = EmpiricalDiscrete::new(&[3.5]);
        let mut rng = seeded_rng(4);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn pmf_normalizes() {
        let d = EmpiricalDiscrete::new(&[2.0, 3.0, 5.0]);
        let s: f64 = (0..3).map(|i| d.pmf(i)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_weights_panic() {
        let _ = EmpiricalDiscrete::new(&[]);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let _ = EmpiricalDiscrete::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_panic() {
        let _ = EmpiricalDiscrete::new(&[0.0, 0.0]);
    }

    #[test]
    fn table2_domain_weights_smoke() {
        // The per-domain job counts of paper Table 2 as weights.
        let jobs = [
            3_319_711.0,
            390_186.0,
            131_760.0,
            54_672.0,
            7_400.0,
            5_719.0,
            5_086.0,
            3_854.0,
            146.0,
            12.0,
            4.0,
            3.0,
        ];
        let d = EmpiricalDiscrete::new(&jobs);
        let mut rng = seeded_rng(5);
        let mut gov = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if d.sample(&mut rng) == 0 {
                gov += 1;
            }
        }
        // .gov dominates at ~84.8% of job submissions.
        let f = gov as f64 / n as f64;
        assert!((f - 0.848).abs() < 0.02, "gov fraction {f}");
    }
}
