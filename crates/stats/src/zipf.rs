//! Zipf and Zipf–Mandelbrot samplers over finite rank spaces.
//!
//! The paper (Section 3.2) observes that filecule popularity does **not**
//! follow the classic Zipf model of web requests [Breslau et al. '99]; the
//! distribution is flatter. The synthetic workload therefore needs both a
//! plain Zipf sampler (for the baselines / ablations) and the *shifted*
//! Zipf–Mandelbrot form `p(k) ∝ 1/(k+q)^s`, whose plateau for small ranks
//! reproduces the flattened head the paper reports.

use crate::SampleIndex;
use rand::Rng;

/// A finite discrete Zipf–Mandelbrot distribution over ranks `0..n`.
///
/// `p(k) ∝ 1 / (k + 1 + q)^s` for `k ∈ 0..n`. With `q == 0` this is the
/// classic Zipf distribution. Sampling is by binary search over the
/// precomputed CDF: O(log n) per draw after O(n) setup.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[n-1] == 1.0`.
    cdf: Vec<f64>,
    exponent: f64,
    shift: f64,
}

impl Zipf {
    /// Classic Zipf over `n` ranks with exponent `s > 0`.
    ///
    /// ```
    /// use hep_stats::Zipf;
    /// use hep_stats::rng::seeded_rng;
    /// let z = Zipf::new(100, 1.0);
    /// let mut rng = seeded_rng(1);
    /// let r = z.sample(&mut rng);
    /// assert!(r < 100);
    /// assert!(z.pmf(0) > z.pmf(99));
    /// ```
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        Self::mandelbrot(n, s, 0.0)
    }

    /// Zipf–Mandelbrot over `n` ranks: `p(k) ∝ 1/(k+1+q)^s`.
    ///
    /// Larger `q` flattens the head of the distribution, which is how the
    /// workload generator models the paper's non-Zipf popularity.
    ///
    /// # Panics
    /// Panics if `n == 0`, `s <= 0`, or `q < 0`.
    pub fn mandelbrot(n: usize, s: f64, q: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        assert!(q.is_finite() && q >= 0.0, "Zipf shift must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / (k as f64 + 1.0 + q).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self {
            cdf,
            exponent: s,
            shift: q,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The Mandelbrot shift `q`.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len());
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // index with cdf[i] >= u, which is exactly the sampled rank.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

impl SampleIndex for Zipf {
    fn sample_index(&self, rng: &mut dyn rand::RngCore) -> usize {
        self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_within_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = seeded_rng(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = Zipf::new(20, 1.0);
        let mut rng = seeded_rng(3);
        let mut counts = [0usize; 20];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
    }

    #[test]
    fn empirical_frequency_matches_pmf() {
        let z = Zipf::new(5, 1.5);
        let mut rng = seeded_rng(4);
        let n = 200_000usize;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - z.pmf(k)).abs() < 0.01,
                "rank {k}: freq {freq} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn mandelbrot_shift_flattens_head() {
        let plain = Zipf::new(100, 1.0);
        let shifted = Zipf::mandelbrot(100, 1.0, 20.0);
        // Ratio of first to tenth rank should be much smaller when shifted.
        let r_plain = plain.pmf(0) / plain.pmf(9);
        let r_shift = shifted.pmf(0) / shifted.pmf(9);
        assert!(r_shift < r_plain / 2.0, "{r_shift} !< {r_plain}/2");
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
