//! Daily time-series bucketing.
//!
//! Figure 2 of the paper shows jobs per day and file requests per day over
//! the 27-month trace window. Trace timestamps in this workspace are `u64`
//! seconds from the trace epoch; [`DailySeries`] buckets event counts by
//! day and exposes the series the figure needs.

use serde::{Deserialize, Serialize};

/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;

/// Per-day event counters over a fixed horizon starting at t = 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DailySeries {
    counts: Vec<u64>,
    /// Events past the horizon (recorded but out of range).
    beyond: u64,
}

impl DailySeries {
    /// Create a series spanning `horizon_secs` seconds (rounded up to whole
    /// days).
    ///
    /// # Panics
    /// Panics if `horizon_secs == 0`.
    pub fn new(horizon_secs: u64) -> Self {
        assert!(horizon_secs > 0, "horizon must be positive");
        let days = horizon_secs.div_ceil(SECS_PER_DAY) as usize;
        Self {
            counts: vec![0; days],
            beyond: 0,
        }
    }

    /// Record one event at `t` seconds from the epoch. An optional weight
    /// variant is provided by [`DailySeries::record_n`].
    pub fn record(&mut self, t_secs: u64) {
        self.record_n(t_secs, 1);
    }

    /// Record `n` simultaneous events at `t` (e.g. a job touching `n` files).
    pub fn record_n(&mut self, t_secs: u64, n: u64) {
        let day = (t_secs / SECS_PER_DAY) as usize;
        if day < self.counts.len() {
            self.counts[day] += n;
        } else {
            self.beyond += n;
        }
    }

    /// Number of days in the horizon.
    pub fn days(&self) -> usize {
        self.counts.len()
    }

    /// Count for day `d`.
    pub fn day_count(&self, d: usize) -> u64 {
        self.counts[d]
    }

    /// All daily counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Events recorded past the horizon.
    pub fn beyond(&self) -> u64 {
        self.beyond
    }

    /// Total events inside the horizon.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean events per day over the horizon.
    pub fn daily_mean(&self) -> f64 {
        self.total() as f64 / self.counts.len() as f64
    }

    /// Peak day `(index, count)`; `(0, 0)` for an all-zero series.
    pub fn peak(&self) -> (usize, u64) {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .unwrap_or((0, 0))
    }

    /// Downsample by averaging over consecutive `window`-day chunks —
    /// useful for compact textual plots of a 800+ day series.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn downsample_mean(&self, window: usize) -> Vec<f64> {
        assert!(window > 0);
        self.counts
            .chunks(window)
            .map(|c| c.iter().sum::<u64>() as f64 / c.len() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_by_day() {
        let mut s = DailySeries::new(3 * SECS_PER_DAY);
        s.record(0);
        s.record(SECS_PER_DAY - 1);
        s.record(SECS_PER_DAY);
        s.record(2 * SECS_PER_DAY + 5);
        assert_eq!(s.counts(), &[2, 1, 1]);
    }

    #[test]
    fn beyond_horizon() {
        let mut s = DailySeries::new(SECS_PER_DAY);
        s.record(2 * SECS_PER_DAY);
        assert_eq!(s.total(), 0);
        assert_eq!(s.beyond(), 1);
    }

    #[test]
    fn weighted_record() {
        let mut s = DailySeries::new(SECS_PER_DAY);
        s.record_n(10, 108);
        assert_eq!(s.day_count(0), 108);
    }

    #[test]
    fn horizon_rounds_up() {
        let s = DailySeries::new(SECS_PER_DAY + 1);
        assert_eq!(s.days(), 2);
    }

    #[test]
    fn peak_and_mean() {
        let mut s = DailySeries::new(4 * SECS_PER_DAY);
        s.record_n(0, 5);
        s.record_n(SECS_PER_DAY, 9);
        s.record_n(3 * SECS_PER_DAY, 2);
        assert_eq!(s.peak(), (1, 9));
        assert!((s.daily_mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn downsample() {
        let mut s = DailySeries::new(4 * SECS_PER_DAY);
        for d in 0..4 {
            s.record_n(d * SECS_PER_DAY, d + 1);
        }
        let ds = s.downsample_mean(2);
        assert_eq!(ds, vec![1.5, 3.5]);
    }

    #[test]
    fn peak_prefers_earliest_on_tie() {
        let mut s = DailySeries::new(3 * SECS_PER_DAY);
        s.record_n(0, 4);
        s.record_n(2 * SECS_PER_DAY, 4);
        assert_eq!(s.peak(), (0, 4));
    }

    #[test]
    #[should_panic]
    fn zero_horizon_panics() {
        let _ = DailySeries::new(0);
    }
}
