//! Linear- and log-binned histograms.
//!
//! Every distribution figure in the paper (Figures 1, 3–9) is a histogram
//! over counts or byte sizes spanning several orders of magnitude, so a
//! logarithmically binned variant is provided alongside the linear one.

use serde::{Deserialize, Serialize};

/// A fixed-width linear histogram over `[lo, hi)` with values outside the
/// range accumulated in underflow/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "need at least one bin");
        assert!(lo < hi, "need lo < hi");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Record many observations.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.record(x);
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Iterate `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let (a, b) = self.bin_edges(i);
            ((a + b) / 2.0, self.bins[i])
        })
    }
}

/// A logarithmically binned histogram over `[lo, hi)`, `lo > 0`.
///
/// Bin edges are geometric: `lo * r^i` with `r = (hi/lo)^(1/nbins)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl LogHistogram {
    /// Create a log histogram with `nbins` geometric bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0`, `lo <= 0`, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "need at least one bin");
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation. Non-positive values land in underflow.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let span = (self.hi / self.lo).ln();
            let idx = (((x / self.lo).ln() / span * self.bins.len() as f64) as usize)
                .min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Record many observations.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.record(x);
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `lo` (including non-positive).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` edges of bin `i` (geometric).
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let r = (self.hi / self.lo).powf(1.0 / self.bins.len() as f64);
        (self.lo * r.powi(i as i32), self.lo * r.powi(i as i32 + 1))
    }

    /// Iterate `(geometric bin center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let (a, b) = self.bin_edges(i);
            ((a * b).sqrt(), self.bins[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_places_values() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.9);
        h.record(5.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn linear_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(2.0);
        h.record(1.0); // hi is exclusive
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn counts_conserved() {
        let mut h = Histogram::new(0.0, 100.0, 7);
        for i in -10..200 {
            h.record(i as f64);
        }
        let inside: u64 = (0..h.nbins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(inside + h.underflow() + h.overflow(), h.count());
    }

    #[test]
    fn log_binning_geometric_edges() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        let (a0, b0) = h.bin_edges(0);
        let (a1, b1) = h.bin_edges(1);
        assert!((a0 - 1.0).abs() < 1e-9);
        assert!((b0 - 10.0).abs() < 1e-6);
        assert!((a1 - 10.0).abs() < 1e-6);
        assert!((b1 - 100.0).abs() < 1e-4);
    }

    #[test]
    fn log_binning_places_values() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.record(2.0); // bin 0: [1,10)
        h.record(50.0); // bin 1: [10,100)
        h.record(999.0); // bin 2: [100,1000)
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
    }

    #[test]
    fn log_counts_conserved() {
        let mut h = LogHistogram::new(1.0, 1e6, 12);
        for i in 0..10_000 {
            h.record((i as f64) * 137.0);
        }
        let inside: u64 = (0..h.nbins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(inside + h.underflow() + h.overflow(), h.count());
    }

    #[test]
    fn log_zero_and_negative_underflow() {
        let mut h = LogHistogram::new(1.0, 10.0, 2);
        h.record(0.0);
        h.record(-5.0);
        assert_eq!(h.underflow(), 2);
    }

    #[test]
    #[should_panic]
    fn log_nonpositive_lo_panics() {
        let _ = LogHistogram::new(0.0, 10.0, 2);
    }

    #[test]
    fn iter_centers_ascending() {
        let mut h = LogHistogram::new(1.0, 100.0, 5);
        h.record(3.0);
        let centers: Vec<f64> = h.iter().map(|(c, _)| c).collect();
        for w in centers.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
