//! Correlation coefficients.
//!
//! The paper reports "no correlation between filecule popularity and
//! filecule size" (Section 3); we verify that on the synthetic traces with
//! Pearson and Spearman coefficients.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns 0 when either sample has zero variance.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    assert!(!xs.is_empty(), "samples must be non-empty");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Spearman rank correlation (Pearson on mid-ranks, handling ties).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    assert!(!xs.is_empty(), "samples must be non-empty");
    let rx = midranks(xs);
    let ry = midranks(ys);
    pearson(&rx, &ry)
}

/// Assign mid-ranks (average rank for ties), 1-based.
fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN in sample"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use rand::Rng;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_gives_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn independent_samples_near_zero() {
        let mut rng = seeded_rng(1);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        assert!(pearson(&xs, &ys).abs() < 0.03);
        assert!(spearman(&xs, &ys).abs() < 0.03);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // y = x^3 is monotone: Spearman 1, Pearson < 1.
        let xs: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn midranks_handle_ties() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        let _ = pearson(&[], &[]);
    }
}
