//! Streaming summary statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Streaming summary of a univariate sample: count, mean, variance
/// (Welford), min, max, and sum. Mergeable, so per-shard summaries computed
/// in parallel can be combined.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Build a summary from an iterator.
    #[allow(clippy::should_implement_trait, clippy::same_name_method)]
    pub fn from_iter<I, T>(iter: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<f64>,
    {
        let mut s = Self::new();
        for x in iter {
            s.record(x.into());
        }
        s
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance; 0 for fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum; `+inf` for an empty summary.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum; `-inf` for an empty summary.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (stddev / mean); 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean().abs()
        }
    }
}

/// Gini coefficient of a non-negative sample — inequality of a
/// distribution (0 = perfectly equal, → 1 = one value holds everything).
/// Used to characterize the skew of user activity and filecule popularity.
///
/// # Panics
/// Panics if the sample is empty or contains negative values.
pub fn gini(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "gini needs a non-empty sample");
    assert!(
        sample.iter().all(|&x| x >= 0.0),
        "gini needs non-negative values"
    );
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len() as f64;
    let total: f64 = xs.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_moments() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_iter(xs.iter().copied());
        let mut a = Summary::from_iter(xs[..37].iter().copied());
        let b = Summary::from_iter(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::from_iter([1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn single_value() {
        let s = Summary::from_iter([3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn cv_definition() {
        let s = Summary::from_iter([1.0, 3.0]);
        assert!((s.cv() - s.stddev() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn gini_equal_sample_zero() {
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_sample_near_one() {
        let mut xs = vec![0.0; 99];
        xs.push(1000.0);
        let g = gini(&xs);
        assert!(g > 0.95, "g = {g}");
    }

    #[test]
    fn gini_known_value() {
        // {1, 3}: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
        assert!((gini(&[1.0, 3.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gini_all_zero_is_zero() {
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn gini_negative_panics() {
        let _ = gini(&[1.0, -1.0]);
    }
}
