//! # hep-stats
//!
//! Statistics substrate for the filecules reproduction (HPDC 2006).
//!
//! This crate is deliberately self-contained (no dependency on the rest of
//! the workspace) and provides the numeric building blocks every other crate
//! consumes:
//!
//! * deterministic RNG plumbing ([`rng`]) — every stochastic component in
//!   the workspace takes an explicit `u64` seed and derives independent
//!   child streams from it;
//! * samplers for the distributions the DZero workload calibration needs
//!   ([`zipf`], [`lognormal`], [`empirical`], [`mixture`]);
//! * descriptive statistics: histograms ([`histogram`]), empirical CDFs
//!   ([`ecdf`]), summary statistics ([`summary`]), correlation
//!   ([`correlation`]);
//! * distribution fitting and goodness-of-fit ([`fit`]) — used to reproduce
//!   the paper's claim that filecule popularity is *not* Zipf (Section 3.2);
//! * time-series bucketing ([`timeseries`]) for the per-day activity plots
//!   (Figure 2).

#![warn(missing_docs)]

pub mod correlation;
pub mod ecdf;
pub mod empirical;
pub mod exponential;
pub mod fit;
pub mod histogram;
pub mod lognormal;
pub mod mixture;
pub mod rng;
pub mod summary;
pub mod timeseries;
pub mod zipf;

pub use correlation::{pearson, spearman};
pub use ecdf::Ecdf;
pub use empirical::EmpiricalDiscrete;
pub use exponential::Exp;
pub use fit::{fit_lognormal, fit_zipf_mle, ks_distance, LogNormalFit, ZipfFit};
pub use histogram::{Histogram, LogHistogram};
pub use lognormal::TruncatedLogNormal;
pub use mixture::Mixture;
pub use rng::{child_seed, seeded_rng, SeedStream};
pub use summary::{gini, Summary};
pub use timeseries::DailySeries;
pub use zipf::Zipf;

/// A sampler over `f64` values. All workload-model distributions implement
/// this so generators can hold them behind `Box<dyn SampleF64>`.
pub trait SampleF64 {
    /// Draw one sample using the supplied RNG.
    fn sample_f64(&self, rng: &mut dyn rand::RngCore) -> f64;
}

/// A sampler over `usize` indices (e.g. ranks, category choices).
pub trait SampleIndex {
    /// Draw one index using the supplied RNG.
    fn sample_index(&self, rng: &mut dyn rand::RngCore) -> usize;
}
