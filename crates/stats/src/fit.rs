//! Distribution fitting and goodness-of-fit.
//!
//! Section 3.2 of the paper argues filecule popularity does **not** follow
//! the Zipf model of web requests. To reproduce that claim quantitatively we
//! fit a discrete Zipf by maximum likelihood to a popularity sample and
//! report the Kolmogorov–Smirnov distance; a large KS distance on the
//! synthetic popularity sample (vs a small one on genuinely Zipf data)
//! reproduces the paper's conclusion.

use crate::ecdf::Ecdf;
use serde::{Deserialize, Serialize};

/// Result of a Zipf maximum-likelihood fit over ranks `1..=n`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZipfFit {
    /// Fitted exponent `s` of `p(k) ∝ k^-s`.
    pub exponent: f64,
    /// Number of ranks in the support.
    pub n_ranks: usize,
    /// KS distance between the sample and the fitted model.
    pub ks: f64,
}

/// Result of a lognormal moment fit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogNormalFit {
    /// Log-space mean.
    pub mu: f64,
    /// Log-space standard deviation.
    pub sigma: f64,
    /// KS distance between the sample and the fitted model.
    pub ks: f64,
}

/// Fit a discrete Zipf distribution `p(k) ∝ k^-s`, `k ∈ 1..=n`, to a sample
/// of ranks by maximum likelihood (golden-section search over `s`), and
/// compute the KS distance of the fit.
///
/// `ranks` are 1-based; values outside `1..=n_ranks` are clamped.
///
/// # Panics
/// Panics if `ranks` is empty or `n_ranks == 0`.
pub fn fit_zipf_mle(ranks: &[u64], n_ranks: usize) -> ZipfFit {
    assert!(!ranks.is_empty(), "need a non-empty rank sample");
    assert!(n_ranks > 0, "need at least one rank");

    let clamped: Vec<u64> = ranks.iter().map(|&r| r.clamp(1, n_ranks as u64)).collect();
    let mean_log: f64 =
        clamped.iter().map(|&r| (r as f64).ln()).sum::<f64>() / clamped.len() as f64;

    // Negative log-likelihood per observation:
    //   s * mean(ln k) + ln H(n, s),  H(n, s) = sum_{k=1..n} k^-s
    let nll = |s: f64| -> f64 {
        let h: f64 = (1..=n_ranks).map(|k| (k as f64).powf(-s)).sum();
        s * mean_log + h.ln()
    };

    // Golden-section search over s in [0.01, 5].
    let (mut a, mut b) = (0.01f64, 5.0f64);
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut c, mut d) = (b - phi * (b - a), a + phi * (b - a));
    let (mut fc, mut fd) = (nll(c), nll(d));
    for _ in 0..80 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = nll(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = nll(d);
        }
    }
    let s = (a + b) / 2.0;

    // KS distance against the fitted CDF.
    let h: f64 = (1..=n_ranks).map(|k| (k as f64).powf(-s)).sum();
    let mut model_cdf = Vec::with_capacity(n_ranks);
    let mut acc = 0.0;
    for k in 1..=n_ranks {
        acc += (k as f64).powf(-s) / h;
        model_cdf.push(acc);
    }
    let ecdf = Ecdf::new(clamped.iter().map(|&r| r as f64).collect());
    let ks = (1..=n_ranks)
        .map(|k| (ecdf.cdf(k as f64) - model_cdf[k - 1]).abs())
        .fold(0.0f64, f64::max);

    ZipfFit {
        exponent: s,
        n_ranks,
        ks,
    }
}

/// Fit a lognormal by log-space moments and compute the KS distance.
///
/// # Panics
/// Panics if the sample is empty or contains non-positive values.
pub fn fit_lognormal(sample: &[f64]) -> LogNormalFit {
    assert!(!sample.is_empty(), "need a non-empty sample");
    assert!(
        sample.iter().all(|&x| x > 0.0),
        "lognormal sample must be positive"
    );
    let n = sample.len() as f64;
    let mu = sample.iter().map(|x| x.ln()).sum::<f64>() / n;
    let var = sample.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
    let sigma = var.sqrt().max(1e-12);

    let ecdf = Ecdf::new(sample.to_vec());
    let ks = sample
        .iter()
        .map(|&x| {
            let model = crate::lognormal::normal_cdf((x.ln() - mu) / sigma);
            (ecdf.cdf(x) - model).abs()
        })
        .fold(0.0f64, f64::max);

    LogNormalFit { mu, sigma, ks }
}

/// Two-sample KS distance between ECDFs.
pub fn ks_distance(a: &Ecdf, b: &Ecdf) -> f64 {
    let mut d = 0.0f64;
    for &x in a.values().iter().chain(b.values().iter()) {
        d = d.max((a.cdf(x) - b.cdf(x)).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::zipf::Zipf;

    #[test]
    fn recovers_zipf_exponent() {
        let z = Zipf::new(200, 1.2);
        let mut rng = seeded_rng(1);
        let ranks: Vec<u64> = (0..50_000).map(|_| z.sample(&mut rng) as u64 + 1).collect();
        let fit = fit_zipf_mle(&ranks, 200);
        assert!(
            (fit.exponent - 1.2).abs() < 0.05,
            "fitted s = {}",
            fit.exponent
        );
        assert!(fit.ks < 0.02, "ks = {}", fit.ks);
    }

    #[test]
    fn flat_sample_rejects_zipf() {
        // A flattened (near-uniform) popularity sample — the paper's
        // observation — should either fit a tiny exponent or show large KS
        // relative to any steep Zipf.
        let ranks: Vec<u64> = (1..=100).cycle().take(10_000).collect();
        let fit = fit_zipf_mle(&ranks, 100);
        assert!(
            fit.exponent < 0.1,
            "uniform data => s ≈ 0, got {}",
            fit.exponent
        );
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        use rand_distr::{Distribution, LogNormal};
        let d = LogNormal::new(2.0, 0.7).unwrap();
        let mut rng = seeded_rng(2);
        let xs: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_lognormal(&xs);
        assert!((fit.mu - 2.0).abs() < 0.05, "mu = {}", fit.mu);
        assert!((fit.sigma - 0.7).abs() < 0.05, "sigma = {}", fit.sigma);
        assert!(fit.ks < 0.02, "ks = {}", fit.ks);
    }

    #[test]
    fn ks_identical_samples_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert!(ks_distance(&a, &b) < 1e-12);
    }

    #[test]
    fn ks_disjoint_samples_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_symmetry() {
        let a = Ecdf::new(vec![1.0, 5.0, 9.0]);
        let b = Ecdf::new(vec![2.0, 4.0, 8.0, 16.0]);
        assert!((ks_distance(&a, &b) - ks_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_rank_sample_panics() {
        let _ = fit_zipf_mle(&[], 10);
    }

    #[test]
    #[should_panic]
    fn nonpositive_lognormal_sample_panics() {
        let _ = fit_lognormal(&[1.0, 0.0]);
    }
}
