//! The filecule partition data structure.

use hep_trace::{FileId, Trace};
use serde::{Deserialize, Serialize};

/// Identifier of a filecule within a [`FileculeSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileculeId(pub u32);

impl FileculeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A partition of the *accessed* files of a trace into filecules.
///
/// Files never requested by any job carry no usage signature and are left
/// unassigned (`filecule_of` returns `None` for them); the paper's
/// definition only ranges over files appearing in the traces.
///
/// Stored in CSR layout: `members` holds the concatenated, per-filecule
/// sorted file lists and `offsets[i]..offsets[i+1]` delimits filecule `i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileculeSet {
    members: Vec<FileId>,
    offsets: Vec<u32>,
    /// Map from file index to its filecule, `u32::MAX` = unassigned.
    file_map: Vec<u32>,
    /// Requests per filecule (length of the shared job signature). By
    /// property 3 this equals the request count of every member file.
    popularity: Vec<u32>,
    /// Total bytes per filecule.
    bytes: Vec<u64>,
}

impl FileculeSet {
    /// Assemble a set from per-filecule file lists (each list non-empty and
    /// the lists pairwise disjoint), their popularities, and the trace for
    /// byte accounting. `n_files` is the trace's file-table size.
    ///
    /// # Panics
    /// Panics if a list is empty, a file appears twice, or lengths differ.
    pub fn from_groups(groups: Vec<Vec<FileId>>, popularity: Vec<u32>, trace: &Trace) -> Self {
        let sizes: Vec<u64> = trace.files().iter().map(|f| f.size_bytes).collect();
        Self::from_groups_with_sizes(groups, popularity, &sizes)
    }

    /// [`FileculeSet::from_groups`] with a bare file-size table instead
    /// of a materialized trace — the assembly path for out-of-core
    /// identification, where only `O(n_files)` state is resident.
    ///
    /// # Panics
    /// Panics if a list is empty, a file appears twice, or lengths differ.
    pub fn from_groups_with_sizes(
        groups: Vec<Vec<FileId>>,
        popularity: Vec<u32>,
        sizes: &[u64],
    ) -> Self {
        assert_eq!(groups.len(), popularity.len(), "group/popularity mismatch");
        let n_files = sizes.len();
        let total: usize = groups.iter().map(Vec::len).sum();
        let mut members = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(groups.len() + 1);
        let mut file_map = vec![u32::MAX; n_files];
        let mut bytes = Vec::with_capacity(groups.len());
        offsets.push(0u32);
        for (gi, mut g) in groups.into_iter().enumerate() {
            assert!(!g.is_empty(), "filecule {gi} is empty");
            g.sort_unstable();
            let mut b = 0u64;
            for &f in &g {
                assert_eq!(
                    file_map[f.index()],
                    u32::MAX,
                    "file {} assigned to two filecules",
                    f.0
                );
                file_map[f.index()] = gi as u32;
                b += sizes[f.index()];
            }
            members.extend_from_slice(&g);
            offsets.push(members.len() as u32);
            bytes.push(b);
        }
        Self {
            members,
            offsets,
            file_map,
            popularity,
            bytes,
        }
    }

    /// Number of filecules.
    pub fn n_filecules(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of files assigned to some filecule.
    pub fn n_assigned_files(&self) -> usize {
        self.members.len()
    }

    /// The sorted member files of filecule `g`.
    pub fn files(&self, g: FileculeId) -> &[FileId] {
        &self.members[self.offsets[g.index()] as usize..self.offsets[g.index() + 1] as usize]
    }

    /// Number of files in filecule `g`.
    pub fn len(&self, g: FileculeId) -> usize {
        (self.offsets[g.index() + 1] - self.offsets[g.index()]) as usize
    }

    /// True if the set has no filecules.
    pub fn is_empty(&self) -> bool {
        self.n_filecules() == 0
    }

    /// The filecule containing `file`, or `None` if the file was never
    /// accessed.
    pub fn filecule_of(&self, file: FileId) -> Option<FileculeId> {
        match self.file_map.get(file.index()) {
            Some(&g) if g != u32::MAX => Some(FileculeId(g)),
            _ => None,
        }
    }

    /// Request count of filecule `g` (property 3: equals each member's
    /// request count).
    pub fn popularity(&self, g: FileculeId) -> u32 {
        self.popularity[g.index()]
    }

    /// Total bytes of filecule `g`.
    pub fn size_bytes(&self, g: FileculeId) -> u64 {
        self.bytes[g.index()]
    }

    /// Iterate all filecule ids.
    pub fn ids(&self) -> impl Iterator<Item = FileculeId> + '_ {
        (0..self.n_filecules() as u32).map(FileculeId)
    }

    /// The largest filecule by bytes, `(id, bytes)`; `None` when empty.
    pub fn largest_by_bytes(&self) -> Option<(FileculeId, u64)> {
        self.ids()
            .map(|g| (g, self.size_bytes(g)))
            .max_by_key(|&(g, b)| (b, std::cmp::Reverse(g.0)))
    }

    /// Verify the partition against the trace: disjoint, covering all
    /// accessed files, signature-consistent (all members of a filecule are
    /// requested by exactly the same jobs) and popularity-consistent.
    /// Returns violations (empty = valid). O(accesses) memory.
    pub fn verify(&self, trace: &Trace) -> Vec<String> {
        let mut errors = Vec::new();
        // Build per-file signatures.
        let mut sigs: Vec<Vec<u32>> = vec![Vec::new(); trace.n_files()];
        for j in trace.job_ids() {
            for &f in trace.job_files(j) {
                sigs[f.index()].push(j.0);
            }
        }
        // Coverage: accessed <=> assigned.
        for f in trace.file_ids() {
            let accessed = !sigs[f.index()].is_empty();
            let assigned = self.filecule_of(f).is_some();
            if accessed != assigned {
                errors.push(format!(
                    "file {}: accessed={accessed} but assigned={assigned}",
                    f.0
                ));
            }
        }
        // Signature consistency + popularity.
        for g in self.ids() {
            let files = self.files(g);
            let first = &sigs[files[0].index()];
            if self.popularity(g) as usize != first.len() {
                errors.push(format!(
                    "filecule {}: popularity {} but signature length {}",
                    g.0,
                    self.popularity(g),
                    first.len()
                ));
            }
            for &f in &files[1..] {
                if &sigs[f.index()] != first {
                    errors.push(format!(
                        "filecule {}: files {} and {} have different signatures",
                        g.0, files[0].0, f.0
                    ));
                }
            }
            let expected_bytes: u64 = files.iter().map(|&f| trace.file(f).size_bytes).sum();
            if expected_bytes != self.size_bytes(g) {
                errors.push(format!("filecule {}: byte size mismatch", g.0));
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_trace::{DataTier, NodeId, TraceBuilder, MB};

    fn trace_two_groups() -> Trace {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u = b.add_user();
        let f: Vec<FileId> = (0..4)
            .map(|_| b.add_file(MB, DataTier::Thumbnail))
            .collect();
        // f0,f1 always together; f2 alone; f3 never accessed.
        b.add_job(u, s, NodeId(0), DataTier::Thumbnail, 0, 1, &[f[0], f[1]]);
        b.add_job(
            u,
            s,
            NodeId(0),
            DataTier::Thumbnail,
            2,
            3,
            &[f[0], f[1], f[2]],
        );
        b.build().unwrap()
    }

    #[test]
    fn from_groups_and_accessors() {
        let t = trace_two_groups();
        let set = FileculeSet::from_groups(
            vec![vec![FileId(1), FileId(0)], vec![FileId(2)]],
            vec![2, 1],
            &t,
        );
        assert_eq!(set.n_filecules(), 2);
        assert_eq!(set.n_assigned_files(), 3);
        assert_eq!(set.files(FileculeId(0)), &[FileId(0), FileId(1)]);
        assert_eq!(set.len(FileculeId(0)), 2);
        assert_eq!(set.popularity(FileculeId(0)), 2);
        assert_eq!(set.size_bytes(FileculeId(0)), 2 * MB);
        assert_eq!(set.filecule_of(FileId(2)), Some(FileculeId(1)));
        assert_eq!(set.filecule_of(FileId(3)), None);
    }

    #[test]
    fn verify_accepts_correct_partition() {
        let t = trace_two_groups();
        let set = FileculeSet::from_groups(
            vec![vec![FileId(0), FileId(1)], vec![FileId(2)]],
            vec![2, 1],
            &t,
        );
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn verify_rejects_merged_groups() {
        let t = trace_two_groups();
        // f2 has a different signature than f0/f1 — merging them is wrong.
        let set =
            FileculeSet::from_groups(vec![vec![FileId(0), FileId(1), FileId(2)]], vec![2], &t);
        assert!(!set.verify(&t).is_empty());
    }

    #[test]
    fn verify_rejects_wrong_popularity() {
        let t = trace_two_groups();
        let set = FileculeSet::from_groups(
            vec![vec![FileId(0), FileId(1)], vec![FileId(2)]],
            vec![7, 1],
            &t,
        );
        assert!(set.verify(&t).iter().any(|e| e.contains("popularity")));
    }

    #[test]
    fn verify_rejects_missing_coverage() {
        let t = trace_two_groups();
        // f2 accessed but unassigned.
        let set = FileculeSet::from_groups(vec![vec![FileId(0), FileId(1)]], vec![2], &t);
        assert!(set.verify(&t).iter().any(|e| e.contains("assigned=false")));
    }

    #[test]
    #[should_panic]
    fn duplicate_assignment_panics() {
        let t = trace_two_groups();
        let _ = FileculeSet::from_groups(vec![vec![FileId(0)], vec![FileId(0)]], vec![2, 2], &t);
    }

    #[test]
    #[should_panic]
    fn empty_group_panics() {
        let t = trace_two_groups();
        let _ = FileculeSet::from_groups(vec![vec![]], vec![0], &t);
    }

    #[test]
    fn largest_by_bytes() {
        let t = trace_two_groups();
        let set = FileculeSet::from_groups(
            vec![vec![FileId(0), FileId(1)], vec![FileId(2)]],
            vec![2, 1],
            &t,
        );
        let (g, b) = set.largest_by_bytes().unwrap();
        assert_eq!(g, FileculeId(0));
        assert_eq!(b, 2 * MB);
    }
}
