//! # filecule-core
//!
//! The primary contribution of *Filecules in High-Energy Physics* (HPDC
//! 2006): identification and analysis of **filecules**.
//!
//! > "We define a *filecule* as an aggregate of one or more files in a
//! > definite arrangement held together by special forces related to their
//! > usage. […] Formally, a set of files F₁,…,Fₙ form a filecule G if and
//! > only if ∀ Fᵢ, Fⱼ ∈ G and ∀ G′ such that Fᵢ ∈ G′, then Fⱼ ∈ G′."
//!
//! Concretely: two files belong to the same filecule exactly when they are
//! requested by exactly the same set of jobs. Filecules are therefore the
//! equivalence classes of files under identical *job-access signatures*,
//! and by construction (paper Section 3):
//!
//! 1. any two filecules are disjoint;
//! 2. every filecule has at least one file;
//! 3. the request count of a file equals the request count of its filecule.
//!
//! This crate provides:
//!
//! * [`FileculeSet`] — the partition, with per-filecule membership, byte
//!   size and popularity;
//! * [`identify::exact`] — signature-grouping identification, O(total
//!   accesses);
//! * [`identify::refine`] — streaming partition refinement (provably the
//!   same output, one job at a time);
//! * [`identify::incremental`] — an online identifier answering
//!   "filecules as of now" after every job (the paper's Section 6/8
//!   dynamic-identification question);
//! * [`identify::partial`] — per-site identification from local knowledge
//!   only, with coarsening metrics (Section 6);
//! * [`metrics`] — the statistics behind Figures 4–9;
//! * [`dynamics`] — filecule stability across time windows (Section 8
//!   future work);
//! * [`sketch`] — a count-min frequency sketch backing the modern
//!   admission policies (TinyLFU) in `cachesim`.

#![warn(missing_docs)]

pub mod dynamics;
pub mod filecule;
pub mod identify;
pub mod metrics;
pub mod sketch;

pub use filecule::{FileculeId, FileculeSet};
pub use identify::exact::{
    certify_partition, identify, identify_from_source, identify_with_siphash,
};
pub use identify::hashed::{
    identify_hashed, identify_hashed_source, FingerprintHasher, FingerprintMap,
};
pub use identify::incremental::IncrementalFilecules;
pub use identify::partial::{identify_per_site, CoarseningReport};
pub use identify::refine::identify_refine_source;
pub use sketch::CountMinSketch;
