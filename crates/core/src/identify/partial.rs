//! Filecule identification from partial (site-local) knowledge.
//!
//! Section 6 of the paper: if job requests are only observed at local
//! concentration points (per-site schedulers), the filecules identified
//! from that partial information "can only be larger than the filecules
//! detected using global knowledge", and "the more job submissions, the
//! more likely that the filecules will be smaller and thus more accurate".
//!
//! This module runs identification per site and quantifies both effects:
//! every local filecule is verified to be a union of global filecules
//! (restricted to locally-accessed files), and the accuracy metrics below
//! reproduce the jobs-vs-accuracy relation.

use crate::filecule::FileculeSet;
use crate::identify::exact::identify_jobs;
use hep_trace::{JobId, SiteId, Trace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The local partition of one site.
#[derive(Debug)]
pub struct SiteFilecules {
    /// The site.
    pub site: SiteId,
    /// Jobs submitted from the site.
    pub n_jobs: usize,
    /// Filecules identified from the site's jobs only.
    pub set: FileculeSet,
}

/// Accuracy of one site's local partition against the global one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoarseningReport {
    /// The site.
    pub site: u16,
    /// Jobs observed at the site.
    pub n_jobs: usize,
    /// Files accessed at the site.
    pub n_files: usize,
    /// Local filecule count.
    pub local_filecules: usize,
    /// Number of *global* filecules intersecting the site's file set.
    pub global_filecules_covered: usize,
    /// Mean file count of local filecules.
    pub mean_local_size: f64,
    /// Mean file count of the covered global filecules.
    pub mean_global_size: f64,
    /// Fraction of local filecules that exactly equal a global filecule.
    pub exact_fraction: f64,
    /// True iff every local filecule is a union of global filecules — the
    /// paper's coarsening guarantee (must always hold).
    pub is_union_of_global: bool,
}

/// Identify filecules independently at every site ("each site collects its
/// own job submissions and shares no information with other sites").
pub fn identify_per_site(trace: &Trace) -> Vec<SiteFilecules> {
    let mut per_site_jobs: Vec<Vec<JobId>> = vec![Vec::new(); trace.n_sites()];
    for j in trace.job_ids() {
        per_site_jobs[trace.job(j).site.index()].push(j);
    }
    per_site_jobs
        .into_par_iter()
        .enumerate()
        .map(|(s, jobs)| SiteFilecules {
            site: SiteId(s as u16),
            n_jobs: jobs.len(),
            set: identify_jobs(trace, &jobs),
        })
        .collect()
}

/// Compare each site's local partition with the global one.
pub fn coarsening_reports(
    _trace: &Trace,
    global: &FileculeSet,
    per_site: &[SiteFilecules],
) -> Vec<CoarseningReport> {
    per_site
        .par_iter()
        .map(|sf| {
            let local = &sf.set;
            let mut covered = std::collections::HashSet::new();
            let mut exact = 0usize;
            let mut union_ok = true;
            let mut n_files = 0usize;
            for lg in local.ids() {
                let files = local.files(lg);
                n_files += files.len();
                // Global filecules of the members.
                let mut globals = std::collections::HashSet::new();
                for &f in files {
                    if let Some(gg) = global.filecule_of(f) {
                        globals.insert(gg);
                    } else {
                        union_ok = false; // locally accessed => globally accessed
                    }
                }
                // Union check: the member count of the covered global
                // filecules must equal the local filecule's size (global
                // classes never straddle local ones).
                let global_members: usize = globals.iter().map(|&g| global.len(g)).sum();
                if global_members != files.len() {
                    union_ok = false;
                }
                if globals.len() == 1 && global_members == files.len() {
                    exact += 1;
                }
                covered.extend(globals);
            }
            let mean_local = if local.n_filecules() == 0 {
                0.0
            } else {
                n_files as f64 / local.n_filecules() as f64
            };
            let mean_global = if covered.is_empty() {
                0.0
            } else {
                covered.iter().map(|&g| global.len(g)).sum::<usize>() as f64 / covered.len() as f64
            };
            CoarseningReport {
                site: sf.site.0,
                n_jobs: sf.n_jobs,
                n_files,
                local_filecules: local.n_filecules(),
                global_filecules_covered: covered.len(),
                mean_local_size: mean_local,
                mean_global_size: mean_global,
                exact_fraction: if local.n_filecules() == 0 {
                    1.0
                } else {
                    exact as f64 / local.n_filecules() as f64
                },
                is_union_of_global: union_ok,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::exact::identify;
    use hep_trace::{DataTier, FileId, NodeId, SynthConfig, TraceBuilder, TraceSynthesizer, MB};

    fn two_site_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s0 = b.add_site(d);
        let s1 = b.add_site(d);
        let u = b.add_user();
        let f: Vec<FileId> = (0..4)
            .map(|_| b.add_file(MB, DataTier::Thumbnail))
            .collect();
        // Site 0 sees both jobs and can split {0,1} from {2}.
        b.add_job(
            u,
            s0,
            NodeId(0),
            DataTier::Thumbnail,
            0,
            1,
            &[f[0], f[1], f[2]],
        );
        b.add_job(u, s0, NodeId(0), DataTier::Thumbnail, 2, 3, &[f[0], f[1]]);
        // Site 1 sees one coarse job covering everything.
        b.add_job(
            u,
            s1,
            NodeId(0),
            DataTier::Thumbnail,
            4,
            5,
            &[f[0], f[1], f[2], f[3]],
        );
        b.build().unwrap()
    }

    #[test]
    fn local_partitions_are_coarser() {
        let t = two_site_trace();
        let global = identify(&t);
        // Global: {0,1} (jobs 0,1,2), {2} (jobs 0,2), {3} (job 2).
        assert_eq!(global.n_filecules(), 3);
        let per_site = identify_per_site(&t);
        let site1 = per_site.iter().find(|s| s.site == SiteId(1)).unwrap();
        // Site 1 lumps all four files into one filecule.
        assert_eq!(site1.set.n_filecules(), 1);
        assert_eq!(site1.set.len(crate::FileculeId(0)), 4);
    }

    #[test]
    fn union_property_holds() {
        let t = two_site_trace();
        let global = identify(&t);
        let per_site = identify_per_site(&t);
        for r in coarsening_reports(&t, &global, &per_site) {
            assert!(
                r.is_union_of_global,
                "site {} violates union property",
                r.site
            );
        }
    }

    #[test]
    fn busier_site_is_more_accurate() {
        let t = two_site_trace();
        let global = identify(&t);
        let per_site = identify_per_site(&t);
        let reports = coarsening_reports(&t, &global, &per_site);
        let r0 = reports.iter().find(|r| r.site == 0).unwrap();
        let r1 = reports.iter().find(|r| r.site == 1).unwrap();
        assert!(r0.n_jobs > r1.n_jobs);
        assert!(r0.exact_fraction >= r1.exact_fraction);
        assert!(r0.mean_local_size <= r1.mean_local_size + 1e-9);
    }

    #[test]
    fn union_property_on_synthetic_trace() {
        let t = TraceSynthesizer::new(SynthConfig::small(51)).generate();
        let global = identify(&t);
        let per_site = identify_per_site(&t);
        let reports = coarsening_reports(&t, &global, &per_site);
        assert!(!reports.is_empty());
        for r in &reports {
            assert!(
                r.is_union_of_global,
                "site {} violates union property",
                r.site
            );
            // Coarsening: local filecules cover at least as many files per
            // group as the globals they aggregate.
            assert!(r.local_filecules <= r.global_filecules_covered.max(1));
        }
    }

    #[test]
    fn per_site_job_counts_partition_trace() {
        let t = TraceSynthesizer::new(SynthConfig::small(52)).generate();
        let per_site = identify_per_site(&t);
        let total: usize = per_site.iter().map(|s| s.n_jobs).sum();
        assert_eq!(total, t.n_jobs());
    }

    #[test]
    fn local_sets_verify_against_their_job_subsets() {
        // A site's local partition must itself be a valid filecule
        // partition of the trace restricted to that site's jobs.
        let t = two_site_trace();
        for sf in identify_per_site(&t) {
            // Verify basic structural invariants (bytes, disjointness).
            for g in sf.set.ids() {
                assert!(sf.set.len(g) >= 1);
            }
        }
    }
}
