//! Memory-bounded filecule identification via signature fingerprints.
//!
//! [`exact`](crate::identify::exact) materializes every file's full job
//! list — O(total accesses) memory, 13M entries at the paper's scale.
//! For deployments that only need the partition (Section 6's
//! "infrastructure capable to adaptively and dynamically identify
//! filecules"), a 128-bit rolling fingerprint of the job sequence per file
//! suffices: two files share a filecule iff their fingerprints collide,
//! with error probability ≈ n²/2¹²⁸ (cryptographically negligible — and
//! structurally impossible to miss a *difference* in popularity, which we
//! additionally compare). State is O(files) regardless of trace length.

use crate::filecule::FileculeSet;
use hep_trace::{FileId, JobSource, StreamError, Trace};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// 128-bit fingerprint of a job-id sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct Fingerprint {
    a: u64,
    b: u64,
}

/// Passthrough hasher for keys whose bits are already uniform.
///
/// [`Fingerprint`]s come out of two SplitMix64-style mixers, so their bits
/// are as good as a hash gets; running them through SipHash again (the
/// `HashMap` default) only burns cycles on the hot snapshot path. This
/// hasher folds the written words together with XOR/rotate and returns
/// them as-is — safe here because the key distribution is adversary-free
/// and uniform by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FingerprintHasher {
    state: u64,
}

impl Hasher for FingerprintHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Taken for slice keys (`&[u32]` signature grouping goes through
        // a length prefix plus one byte-slice write) and any derived
        // `Hash` shapes the u32/u64 fast paths don't cover. FNV-1a folded
        // over the current state: byte-position sensitive, so permuted
        // signatures don't collide the way a plain XOR/rotate fold would.
        let mut h = self.state ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        self.state = h;
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.state = self.state.rotate_left(32) ^ u64::from(v);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = self.state.rotate_left(21) ^ v;
    }
}

/// A `HashMap` keyed by fingerprint material, skipping SipHash.
pub type FingerprintMap<K, V> = HashMap<K, V, BuildHasherDefault<FingerprintHasher>>;

impl Fingerprint {
    /// Mix one job id into the fingerprint. Order-sensitive, but every
    /// file's signature is observed in the same (time) order, so equal
    /// sets hash equal.
    #[inline]
    fn mix(&mut self, job: u32) {
        // Two decoupled SplitMix64-style streams.
        let x = u64::from(job).wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.a ^= x;
        self.a = (self.a ^ (self.a >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.a ^= self.a >> 27;
        let y = u64::from(job).wrapping_add(0xD1B5_4A32_D192_ED03);
        self.b ^= y;
        self.b = (self.b ^ (self.b >> 29)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.b ^= self.b >> 31;
    }
}

/// Incremental fingerprint-based identifier: O(files) state.
#[derive(Debug, Clone)]
pub struct HashedIdentifier {
    prints: Vec<Fingerprint>,
    requests: Vec<u32>,
}

impl HashedIdentifier {
    /// A fresh identifier over `n_files` files.
    pub fn new(n_files: usize) -> Self {
        Self {
            prints: vec![Fingerprint::default(); n_files],
            requests: vec![0; n_files],
        }
    }

    /// Observe one job's (sorted, deduplicated) request set. `job` ids must
    /// be fed in a consistent order across all files (time order).
    pub fn observe(&mut self, job: u32, files: &[FileId]) {
        for &f in files {
            self.prints[f.index()].mix(job);
            self.requests[f.index()] += 1;
        }
    }

    /// Materialize the partition: group accessed files by
    /// `(fingerprint, request count)`. Canonical ids (ascending smallest
    /// member), identical to the exact identifier with overwhelming
    /// probability.
    pub fn snapshot(&self, trace: &Trace) -> FileculeSet {
        let (groups, popularity) = self.grouped();
        FileculeSet::from_groups(groups, popularity, trace)
    }

    /// [`HashedIdentifier::snapshot`] against a bare file-size table —
    /// the out-of-core path, where no `Trace` ever exists.
    pub fn snapshot_with_sizes(&self, sizes: &[u64]) -> FileculeSet {
        let (groups, popularity) = self.grouped();
        FileculeSet::from_groups_with_sizes(groups, popularity, sizes)
    }

    /// Group accessed files by `(fingerprint, request count)` into
    /// canonical `(groups, popularity)` columns.
    fn grouped(&self) -> (Vec<Vec<FileId>>, Vec<u32>) {
        let mut index: FingerprintMap<(Fingerprint, u32), u32> = FingerprintMap::default();
        let mut groups: Vec<Vec<FileId>> = Vec::new();
        let mut popularity: Vec<u32> = Vec::new();
        for fi in 0..self.prints.len() {
            if self.requests[fi] == 0 {
                continue;
            }
            let key = (self.prints[fi], self.requests[fi]);
            let gi = *index.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                popularity.push(self.requests[fi]);
                (groups.len() - 1) as u32
            });
            groups[gi as usize].push(FileId(fi as u32));
        }
        (groups, popularity)
    }
}

/// Identify filecules over the full trace with O(files) memory.
pub fn identify_hashed(trace: &Trace) -> FileculeSet {
    let mut id = HashedIdentifier::new(trace.n_files());
    for j in trace.job_ids() {
        id.observe(j.0, trace.job_files(j));
    }
    id.snapshot(trace)
}

/// Identify filecules over any [`JobSource`] with O(files) memory —
/// the out-of-core entry point. The fingerprint mix is order-sensitive
/// in job ids, and sources visit jobs in `JobId` order (the same order
/// `identify_hashed` consumes from a trace), so the output is identical
/// to the in-memory result. Post-open I/O failures of a disk-backed
/// source surface as [`StreamError`].
pub fn identify_hashed_source(source: &dyn JobSource) -> Result<FileculeSet, StreamError> {
    let sizes = source.file_size_table();
    let mut id = HashedIdentifier::new(sizes.len());
    source.for_each_job(&mut |j, _start, files| {
        id.observe(j.0, files);
    })?;
    Ok(id.snapshot_with_sizes(&sizes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::exact::identify;
    use hep_trace::{DataTier, NodeId, SynthConfig, TraceBuilder, TraceSynthesizer, MB};

    fn build_trace(jobs: &[&[u32]], n_files: u32) -> Trace {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u = b.add_user();
        for _ in 0..n_files {
            b.add_file(MB, DataTier::Thumbnail);
        }
        for (i, files) in jobs.iter().enumerate() {
            let list: Vec<FileId> = files.iter().map(|&f| FileId(f)).collect();
            b.add_job(
                u,
                s,
                NodeId(0),
                DataTier::Thumbnail,
                i as u64,
                i as u64 + 1,
                &list,
            );
        }
        b.build().unwrap()
    }

    fn assert_same(a: &FileculeSet, b: &FileculeSet) {
        assert_eq!(a.n_filecules(), b.n_filecules());
        for g in a.ids() {
            assert_eq!(a.files(g), b.files(g));
            assert_eq!(a.popularity(g), b.popularity(g));
        }
    }

    #[test]
    fn matches_exact_on_small_patterns() {
        let patterns: [&[&[u32]]; 4] = [
            &[&[0, 1, 2]],
            &[&[0, 1, 2], &[1, 2, 3]],
            &[&[0, 1], &[0, 1], &[2], &[0, 2]],
            &[&[4, 3, 2, 1, 0], &[0, 2, 4], &[1, 3], &[0]],
        ];
        for jobs in patterns {
            let t = build_trace(jobs, 5);
            assert_same(&identify(&t), &identify_hashed(&t));
        }
    }

    #[test]
    fn matches_exact_on_synthetic_trace() {
        let t = TraceSynthesizer::new(SynthConfig::small(171)).generate();
        assert_same(&identify(&t), &identify_hashed(&t));
    }

    #[test]
    fn fingerprints_are_order_insensitive_within_a_job() {
        // Files within a job each mix the same job id once, so member
        // order can't matter; verify by observing permuted lists.
        let mut a = HashedIdentifier::new(3);
        a.observe(7, &[FileId(0), FileId(1), FileId(2)]);
        let mut b = HashedIdentifier::new(3);
        b.observe(7, &[FileId(2), FileId(0), FileId(1)]);
        assert_eq!(a.prints, b.prints);
    }

    #[test]
    fn different_job_sets_differ() {
        let mut id = HashedIdentifier::new(2);
        id.observe(1, &[FileId(0), FileId(1)]);
        id.observe(2, &[FileId(0)]);
        assert_ne!(id.prints[0], id.prints[1]);
        assert_ne!(id.requests[0], id.requests[1]);
    }

    #[test]
    fn unaccessed_files_unassigned() {
        let t = build_trace(&[&[0]], 3);
        let set = identify_hashed(&t);
        assert_eq!(set.n_filecules(), 1);
        assert_eq!(set.filecule_of(FileId(1)), None);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn partition_verifies_on_synthetic() {
        let t = TraceSynthesizer::new(SynthConfig::small(172)).generate();
        let set = identify_hashed(&t);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn passthrough_hasher_agrees_with_key_equality() {
        use std::hash::{BuildHasher, Hash};
        let build = BuildHasherDefault::<FingerprintHasher>::default();
        let hash_of = |key: &(Fingerprint, u32)| {
            let mut h = build.build_hasher();
            key.hash(&mut h);
            h.finish()
        };
        let fp = |a: u64, b: u64| Fingerprint { a, b };
        // Equal keys hash equal; near-miss keys (one word or the count
        // differing) must not collide through the fold.
        assert_eq!(hash_of(&(fp(1, 2), 3)), hash_of(&(fp(1, 2), 3)));
        assert_ne!(hash_of(&(fp(1, 2), 3)), hash_of(&(fp(2, 1), 3)));
        assert_ne!(hash_of(&(fp(1, 2), 3)), hash_of(&(fp(1, 2), 4)));

        // And the map behaves like the SipHash one.
        let mut m: FingerprintMap<(Fingerprint, u32), u32> = FingerprintMap::default();
        for i in 0..1000u32 {
            let mut p = Fingerprint::default();
            p.mix(i);
            m.insert((p, i), i);
        }
        assert_eq!(m.len(), 1000);
        let mut probe = Fingerprint::default();
        probe.mix(500);
        assert_eq!(m.get(&(probe, 500)), Some(&500));
    }
}
