//! Filecule identification algorithms.
//!
//! Three interchangeable implementations, all computing the same partition
//! (equivalence classes of files under identical job-access signatures):
//!
//! * [`exact`] — offline signature grouping: build each file's job list and
//!   hash-group equal lists. O(total accesses) time and memory, plus a
//!   rayon-parallel variant for large traces.
//! * [`refine`] — streaming partition refinement: process one job at a
//!   time, splitting groups at request boundaries. Same output, bounded
//!   state (no per-file job lists), suitable for online use.
//! * [`hashed`] — fingerprint grouping with O(files) memory (exact with
//!   overwhelming probability), for online deployments that cannot afford
//!   per-file job lists.
//! * [`incremental`] — a stateful wrapper over refinement that answers
//!   "what are the filecules as of now" after every job, the building
//!   block for the paper's dynamic-identification discussion (Section 6).
//!
//! [`partial`] applies identification to site-local job subsets only and
//! quantifies the coarsening the paper predicts ("without global
//! information, identified filecules can only be larger than real
//! filecules").

pub mod exact;
pub mod hashed;
pub mod incremental;
pub mod partial;
pub mod refine;
