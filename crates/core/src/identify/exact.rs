//! Offline filecule identification by signature grouping.
//!
//! Build, for every file, the (time-ordered) list of jobs that requested
//! it, then group files whose lists are identical. The per-file lists are
//! laid out in one CSR arena so grouping keys are borrowed slices — no
//! per-file allocations. Grouping maps skip SipHash
//! ([`FingerprintMap`]); [`identify_with_siphash`] keeps the default
//! hasher as a benchmark baseline.
//!
//! Exact identification fundamentally needs every file's full job list,
//! so it cannot stream in O(files) the way `refine`/`hashed` do. The
//! out-of-core [`identify_from_source`] instead runs the documented
//! two-pass external grouping: a hashed fingerprint pass (O(files)
//! state) followed by a certification pass that proves the partition
//! against the raw job stream, falling back to streamed refinement on
//! the (cryptographically negligible) chance of a fingerprint collision.

use crate::filecule::FileculeSet;
use crate::identify::hashed::{identify_hashed_source, FingerprintMap};
use crate::identify::refine::identify_refine_source;
use hep_trace::{FileId, JobId, JobSource, StreamError, Trace};
use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::BuildHasher;

/// Per-file job signatures in CSR layout.
struct Signatures {
    offsets: Vec<u32>,
    arena: Vec<u32>,
}

impl Signatures {
    /// Build signatures from a subset of jobs (ids must be sorted; job ids
    /// are appended in order, so each file's list is sorted too).
    fn build(trace: &Trace, jobs: &[JobId]) -> Self {
        let n_files = trace.n_files();
        let mut counts = vec![0u32; n_files];
        for &j in jobs {
            for &f in trace.job_files(j) {
                counts[f.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n_files + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut arena = vec![0u32; acc as usize];
        for &j in jobs {
            for &f in trace.job_files(j) {
                let slot = cursor[f.index()];
                arena[slot as usize] = j.0;
                cursor[f.index()] = slot + 1;
            }
        }
        Self { offsets, arena }
    }

    fn sig(&self, f: usize) -> &[u32] {
        &self.arena[self.offsets[f] as usize..self.offsets[f + 1] as usize]
    }
}

/// Identify filecules over the full trace.
///
/// Filecule ids are assigned in ascending order of each filecule's smallest
/// member file id, so the result is deterministic.
///
/// ```
/// use hep_trace::{TraceBuilder, DataTier, NodeId, MB};
/// use filecule_core::identify;
///
/// let mut b = TraceBuilder::new();
/// let d = b.add_domain(".gov");
/// let s = b.add_site(d);
/// let u = b.add_user();
/// let f0 = b.add_file(MB, DataTier::Thumbnail);
/// let f1 = b.add_file(MB, DataTier::Thumbnail);
/// let f2 = b.add_file(MB, DataTier::Thumbnail);
/// // {f0,f1} always travel together; f2 is also requested alone.
/// b.add_job(u, s, NodeId(0), DataTier::Thumbnail, 0, 1, &[f0, f1, f2]);
/// b.add_job(u, s, NodeId(0), DataTier::Thumbnail, 2, 3, &[f2]);
/// let trace = b.build().unwrap();
///
/// let set = identify(&trace);
/// assert_eq!(set.n_filecules(), 2);
/// assert_eq!(set.filecule_of(f0), set.filecule_of(f1));
/// assert_ne!(set.filecule_of(f0), set.filecule_of(f2));
/// assert!(set.verify(&trace).is_empty());
/// ```
pub fn identify(trace: &Trace) -> FileculeSet {
    let jobs: Vec<JobId> = trace.job_ids().collect();
    identify_jobs(trace, &jobs)
}

/// [`identify`] with the standard-library SipHash grouping map — the
/// hardened-but-slower baseline `bench_identify` compares the
/// fingerprint-hashed default against.
pub fn identify_with_siphash(trace: &Trace) -> FileculeSet {
    let jobs: Vec<JobId> = trace.job_ids().collect();
    let sigs = Signatures::build(trace, &jobs);
    group_by_signature(trace, &sigs, std::collections::hash_map::RandomState::new())
}

/// Identify filecules using only the given jobs (e.g. one site's jobs).
/// `jobs` must be sorted ascending.
pub fn identify_jobs(trace: &Trace, jobs: &[JobId]) -> FileculeSet {
    debug_assert!(jobs.windows(2).all(|w| w[0] < w[1]), "jobs must be sorted");
    let sigs = Signatures::build(trace, jobs);
    group_by_signature(
        trace,
        &sigs,
        std::hash::BuildHasherDefault::<crate::identify::hashed::FingerprintHasher>::default(),
    )
}

/// Group files with identical signatures, using `build` for the index
/// map. Signature keys are `&[u32]` slices: the non-SipHash path hashes
/// them through `FingerprintHasher`'s FNV-1a byte fold.
fn group_by_signature<S: BuildHasher>(trace: &Trace, sigs: &Signatures, build: S) -> FileculeSet {
    let mut index: HashMap<&[u32], u32, S> = HashMap::with_hasher(build);
    let mut groups: Vec<Vec<FileId>> = Vec::new();
    let mut popularity: Vec<u32> = Vec::new();
    for f in 0..trace.n_files() {
        let sig = sigs.sig(f);
        if sig.is_empty() {
            continue;
        }
        let gi = *index.entry(sig).or_insert_with(|| {
            groups.push(Vec::new());
            popularity.push(sig.len() as u32);
            (groups.len() - 1) as u32
        });
        groups[gi as usize].push(FileId(f as u32));
    }
    FileculeSet::from_groups(groups, popularity, trace)
}

/// Exact identification over any [`JobSource`] — the out-of-core entry
/// point, O(files) resident state.
///
/// Two passes: (1) fingerprint grouping
/// ([`identify_hashed_source`]) proposes a partition; (2)
/// [`certify_partition`] proves it against the raw job stream (every
/// job must touch each proposed filecule all-or-nothing, which holds
/// exactly when every group is signature-uniform). Since equal
/// signatures always collide into one hashed group, the proposal can
/// only err by *merging*, and certification catches precisely that —
/// so a certified partition *is* the exact partition, not just
/// probably. On certification failure (a ≈2⁻¹²⁸ fingerprint collision)
/// we fall back to streamed refinement, which is collision-free.
///
/// Post-open I/O failures of a disk-backed source surface as
/// [`StreamError`].
pub fn identify_from_source(source: &dyn JobSource) -> Result<FileculeSet, StreamError> {
    let set = identify_hashed_source(source)?;
    if certify_partition(source, &set)? {
        Ok(set)
    } else {
        identify_refine_source(source)
    }
}

/// Prove `set` is signature-uniform against the job stream: every job
/// must request each touched filecule in full, and every requested file
/// must be assigned. One extra streaming pass, O(files) state.
///
/// Post-open I/O failures of a disk-backed source surface as
/// [`StreamError`].
pub fn certify_partition(source: &dyn JobSource, set: &FileculeSet) -> Result<bool, StreamError> {
    let mut counts: Vec<u32> = vec![0; set.n_filecules()];
    let mut touched: Vec<u32> = Vec::new();
    let mut ok = true;
    source.for_each_job(&mut |_j, _start, files| {
        if !ok {
            return;
        }
        for &f in files {
            match set.filecule_of(f) {
                Some(g) => {
                    if counts[g.index()] == 0 {
                        touched.push(g.0);
                    }
                    counts[g.index()] += 1;
                }
                // A requested-but-unassigned file can't happen when the
                // proposal came from the same stream; treat it as a
                // certification failure rather than trusting the set.
                None => ok = false,
            }
        }
        for &g in &touched {
            if counts[g as usize] as usize != set.len(crate::FileculeId(g)) {
                ok = false;
            }
            counts[g as usize] = 0;
        }
        touched.clear();
    })?;
    Ok(ok)
}

/// Parallel variant of [`identify`]: files are sharded by signature hash
/// and grouped shard-by-shard with rayon. Produces a result identical to
/// the sequential one (tested), because group order is canonicalized by
/// smallest member file id.
pub fn identify_parallel(trace: &Trace) -> FileculeSet {
    let jobs: Vec<JobId> = trace.job_ids().collect();
    let sigs = Signatures::build(trace, &jobs);

    const SHARDS: usize = 64;
    // Shard each accessed file by a hash of its signature; equal signatures
    // land in the same shard, so shards can group independently.
    let shard_of = |sig: &[u32]| -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &x in sig {
            h ^= u64::from(x);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % SHARDS as u64) as usize
    };

    let mut shards: Vec<Vec<u32>> = vec![Vec::new(); SHARDS];
    for f in 0..trace.n_files() {
        let sig = sigs.sig(f);
        if !sig.is_empty() {
            shards[shard_of(sig)].push(f as u32);
        }
    }

    let mut grouped: Vec<(Vec<FileId>, u32)> = shards
        .into_par_iter()
        .flat_map_iter(|files| {
            let mut index: FingerprintMap<&[u32], usize> = FingerprintMap::default();
            let mut local: Vec<(Vec<FileId>, u32)> = Vec::new();
            for f in files {
                let sig = sigs.sig(f as usize);
                match index.get(sig) {
                    Some(&gi) => local[gi].0.push(FileId(f)),
                    None => {
                        index.insert(sig, local.len());
                        local.push((vec![FileId(f)], sig.len() as u32));
                    }
                }
            }
            local.into_iter()
        })
        .collect();

    // Canonical order: ascending smallest member (lists are built in
    // ascending file order within each shard, so element 0 is the min).
    grouped.sort_by_key(|(g, _)| g[0]);
    let (groups, popularity): (Vec<_>, Vec<_>) = grouped.into_iter().unzip();
    FileculeSet::from_groups(groups, popularity, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filecule::FileculeId;
    use hep_trace::{DataTier, NodeId, SynthConfig, TraceBuilder, TraceSynthesizer, MB};

    fn build_trace(jobs: &[&[u32]], n_files: u32) -> Trace {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u = b.add_user();
        for _ in 0..n_files {
            b.add_file(MB, DataTier::Thumbnail);
        }
        for (i, files) in jobs.iter().enumerate() {
            let list: Vec<FileId> = files.iter().map(|&f| FileId(f)).collect();
            b.add_job(
                u,
                s,
                NodeId(0),
                DataTier::Thumbnail,
                i as u64,
                i as u64 + 1,
                &list,
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn single_job_single_filecule() {
        let t = build_trace(&[&[0, 1, 2]], 3);
        let set = identify(&t);
        assert_eq!(set.n_filecules(), 1);
        assert_eq!(set.len(FileculeId(0)), 3);
        assert_eq!(set.popularity(FileculeId(0)), 1);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn disjoint_jobs_disjoint_filecules() {
        let t = build_trace(&[&[0, 1], &[2, 3]], 4);
        let set = identify(&t);
        assert_eq!(set.n_filecules(), 2);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn overlapping_jobs_split_filecules() {
        // Job A: {0,1,2}; Job B: {1,2,3} => filecules {0}, {1,2}, {3}.
        let t = build_trace(&[&[0, 1, 2], &[1, 2, 3]], 4);
        let set = identify(&t);
        assert_eq!(set.n_filecules(), 3);
        let g12 = set.filecule_of(FileId(1)).unwrap();
        assert_eq!(set.filecule_of(FileId(2)), Some(g12));
        assert_eq!(set.len(g12), 2);
        assert_eq!(set.popularity(g12), 2);
        assert_ne!(set.filecule_of(FileId(0)), Some(g12));
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn repeated_identical_jobs_keep_one_filecule() {
        let t = build_trace(&[&[0, 1], &[0, 1], &[0, 1]], 2);
        let set = identify(&t);
        assert_eq!(set.n_filecules(), 1);
        assert_eq!(set.popularity(FileculeId(0)), 3);
    }

    #[test]
    fn unaccessed_files_unassigned() {
        let t = build_trace(&[&[0]], 3);
        let set = identify(&t);
        assert_eq!(set.n_filecules(), 1);
        assert_eq!(set.filecule_of(FileId(1)), None);
        assert_eq!(set.filecule_of(FileId(2)), None);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn monatomic_filecules_allowed() {
        // Paper: one-file filecules are the "monatomic molecules".
        let t = build_trace(&[&[0], &[1], &[0, 1]], 2);
        let set = identify(&t);
        assert_eq!(set.n_filecules(), 2);
        assert_eq!(set.len(FileculeId(0)), 1);
        assert_eq!(set.len(FileculeId(1)), 1);
    }

    #[test]
    fn ids_ordered_by_min_member() {
        let t = build_trace(&[&[2, 3], &[0, 1]], 4);
        let set = identify(&t);
        assert_eq!(set.filecule_of(FileId(0)), Some(FileculeId(0)));
        assert_eq!(set.filecule_of(FileId(2)), Some(FileculeId(1)));
    }

    #[test]
    fn identify_jobs_subset() {
        let t = build_trace(&[&[0, 1, 2], &[1, 2, 3]], 4);
        // Using only job 0, all of {0,1,2} look identical.
        let set = identify_jobs(&t, &[hep_trace::JobId(0)]);
        assert_eq!(set.n_filecules(), 1);
        assert_eq!(set.len(FileculeId(0)), 3);
        assert_eq!(set.filecule_of(FileId(3)), None);
    }

    #[test]
    fn parallel_matches_sequential_small() {
        let t = build_trace(&[&[0, 1, 2], &[1, 2, 3], &[4], &[0, 4]], 5);
        let a = identify(&t);
        let b = identify_parallel(&t);
        assert_eq!(a.n_filecules(), b.n_filecules());
        for g in a.ids() {
            assert_eq!(a.files(g), b.files(g));
            assert_eq!(a.popularity(g), b.popularity(g));
        }
    }

    #[test]
    fn parallel_matches_sequential_synthetic() {
        let t = TraceSynthesizer::new(SynthConfig::small(21)).generate();
        let a = identify(&t);
        let b = identify_parallel(&t);
        assert_eq!(a.n_filecules(), b.n_filecules());
        for g in a.ids() {
            assert_eq!(a.files(g), b.files(g));
            assert_eq!(a.popularity(g), b.popularity(g));
        }
    }

    #[test]
    fn synthetic_partition_verifies() {
        let t = TraceSynthesizer::new(SynthConfig::small(22)).generate();
        let set = identify(&t);
        assert!(set.n_filecules() > 10);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn property3_popularity_equals_file_requests() {
        let t = TraceSynthesizer::new(SynthConfig::small(23)).generate();
        let set = identify(&t);
        let counts = t.file_request_counts();
        for g in set.ids() {
            for &f in set.files(g) {
                assert_eq!(counts[f.index()], set.popularity(g));
            }
        }
    }
}
