//! Streaming filecule identification by partition refinement.
//!
//! Invariant maintained after every job: two files are in the same group
//! exactly when the sets of *processed* jobs that requested them are equal.
//! Each arriving job with request set `S` then:
//!
//! * puts first-seen files of `S` into one fresh group (their signatures
//!   are all exactly `{this job}`);
//! * for every existing group `G`, splits `G` into `G ∩ S` (signature
//!   extended by this job) and `G \ S` (signature unchanged) — or leaves
//!   `G` whole when `G ⊆ S`.
//!
//! The state is O(files) — no per-file job lists — which is what makes the
//! approach viable for the paper's online-identification setting
//! (Section 6). Cost per job is O(|S|) amortized.

use crate::filecule::FileculeSet;
use crate::identify::hashed::FingerprintMap;
use hep_trace::{FileId, JobId, JobSource, StreamError, Trace};

/// Partition-refinement engine.
#[derive(Debug, Clone, Default)]
pub struct Refiner {
    /// Group of each file; `u32::MAX` = not yet seen.
    group_of: Vec<u32>,
    /// Live member count per group (0 = dead group after a full split).
    group_size: Vec<u32>,
    /// Requests per group (shared signature length).
    group_popularity: Vec<u32>,
    /// Jobs processed.
    jobs_seen: u64,
}

impl Refiner {
    /// An empty refiner for a universe of `n_files` files.
    pub fn new(n_files: usize) -> Self {
        Self {
            group_of: vec![u32::MAX; n_files],
            group_size: Vec::new(),
            group_popularity: Vec::new(),
            jobs_seen: 0,
        }
    }

    /// Number of live groups (current filecules).
    pub fn n_groups(&self) -> usize {
        self.group_size.iter().filter(|&&s| s > 0).count()
    }

    /// Number of jobs processed so far.
    pub fn jobs_seen(&self) -> u64 {
        self.jobs_seen
    }

    /// Process one job's (sorted, deduplicated) request set.
    pub fn add_job(&mut self, files: &[FileId]) {
        self.jobs_seen += 1;
        if files.is_empty() {
            return;
        }
        // Bucket the request set by current group. Group ids are dense
        // counters — `FingerprintMap` skips SipHash on this hot path.
        let mut touched: FingerprintMap<u32, Vec<FileId>> = FingerprintMap::default();
        let mut fresh: Vec<FileId> = Vec::new();
        for &f in files {
            let g = self.group_of[f.index()];
            if g == u32::MAX {
                fresh.push(f);
            } else {
                touched.entry(g).or_default().push(f);
            }
        }
        // First-seen files form one new group with signature {this job}.
        if !fresh.is_empty() {
            let g = self.new_group(fresh.len() as u32, 1);
            for f in fresh {
                self.group_of[f.index()] = g;
            }
        }
        // Split or extend each touched group. Deterministic order: by the
        // smallest touched file id per group.
        let mut parts: Vec<(u32, Vec<FileId>)> = touched.into_iter().collect();
        parts.sort_by_key(|(_, fs)| fs[0]);
        for (g, fs) in parts {
            let gi = g as usize;
            if fs.len() as u32 == self.group_size[gi] {
                // Whole group requested: signature extends in place.
                self.group_popularity[gi] += 1;
            } else {
                // Proper subset: split off the touched files.
                let new = self.new_group(fs.len() as u32, self.group_popularity[gi] + 1);
                self.group_size[gi] -= fs.len() as u32;
                for f in fs {
                    self.group_of[f.index()] = new;
                }
            }
        }
    }

    fn new_group(&mut self, size: u32, popularity: u32) -> u32 {
        let id = self.group_size.len() as u32;
        self.group_size.push(size);
        self.group_popularity.push(popularity);
        id
    }

    /// Materialize the current partition as a [`FileculeSet`]. Filecule ids
    /// are canonicalized by ascending smallest member file id, so a
    /// refiner fed the whole trace yields a set identical to
    /// [`crate::identify::exact::identify`].
    pub fn snapshot(&self, trace: &Trace) -> FileculeSet {
        let (groups, popularity) = self.grouped();
        FileculeSet::from_groups(groups, popularity, trace)
    }

    /// [`Refiner::snapshot`] against a bare file-size table — the
    /// out-of-core path, where no `Trace` ever exists.
    pub fn snapshot_with_sizes(&self, sizes: &[u64]) -> FileculeSet {
        let (groups, popularity) = self.grouped();
        FileculeSet::from_groups_with_sizes(groups, popularity, sizes)
    }

    /// Canonicalized `(groups, popularity)` columns of the current
    /// partition.
    fn grouped(&self) -> (Vec<Vec<FileId>>, Vec<u32>) {
        let mut members: FingerprintMap<u32, Vec<FileId>> = FingerprintMap::default();
        for (fi, &g) in self.group_of.iter().enumerate() {
            if g != u32::MAX {
                members.entry(g).or_default().push(FileId(fi as u32));
            }
        }
        let mut grouped: Vec<(Vec<FileId>, u32)> = members
            .into_iter()
            .map(|(g, fs)| {
                let pop = self.group_popularity[g as usize];
                (fs, pop)
            })
            .collect();
        grouped.sort_by_key(|(fs, _)| fs[0]);
        grouped.into_iter().unzip()
    }
}

/// Identify filecules over the full trace by refinement. Identical output
/// to [`crate::identify::exact::identify`] (tested, including property
/// tests in `/tests`).
pub fn identify_refine(trace: &Trace) -> FileculeSet {
    let mut r = Refiner::new(trace.n_files());
    for j in trace.job_ids() {
        r.add_job(trace.job_files(j));
    }
    r.snapshot(trace)
}

/// Identify filecules by refinement over any [`JobSource`] — the
/// out-of-core entry point. `O(n_files)` resident state end to end; for
/// an FCTB2-backed source this is one decode pass. Output is identical
/// to [`identify_refine`] over the materialized trace (the source
/// visits jobs in the same `JobId` order with the same normalized
/// request sets). Post-open I/O failures of a disk-backed source
/// surface as [`StreamError`].
pub fn identify_refine_source(source: &dyn JobSource) -> Result<FileculeSet, StreamError> {
    let sizes = source.file_size_table();
    let mut r = Refiner::new(sizes.len());
    source.for_each_job(&mut |_j, _start, files| {
        r.add_job(files);
    })?;
    Ok(r.snapshot_with_sizes(&sizes))
}

/// Identify filecules by refinement over a subset of jobs (sorted).
pub fn identify_refine_jobs(trace: &Trace, jobs: &[JobId]) -> FileculeSet {
    let mut r = Refiner::new(trace.n_files());
    for &j in jobs {
        r.add_job(trace.job_files(j));
    }
    r.snapshot(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::exact;
    use hep_trace::{DataTier, NodeId, SynthConfig, TraceBuilder, TraceSynthesizer, MB};

    fn build_trace(jobs: &[&[u32]], n_files: u32) -> Trace {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u = b.add_user();
        for _ in 0..n_files {
            b.add_file(MB, DataTier::Thumbnail);
        }
        for (i, files) in jobs.iter().enumerate() {
            let list: Vec<FileId> = files.iter().map(|&f| FileId(f)).collect();
            b.add_job(
                u,
                s,
                NodeId(0),
                DataTier::Thumbnail,
                i as u64,
                i as u64 + 1,
                &list,
            );
        }
        b.build().unwrap()
    }

    fn assert_same(a: &FileculeSet, b: &FileculeSet) {
        assert_eq!(a.n_filecules(), b.n_filecules());
        for g in a.ids() {
            assert_eq!(a.files(g), b.files(g), "filecule {g:?}");
            assert_eq!(a.popularity(g), b.popularity(g), "filecule {g:?}");
        }
    }

    #[test]
    fn empty_refiner() {
        let r = Refiner::new(10);
        assert_eq!(r.n_groups(), 0);
        assert_eq!(r.jobs_seen(), 0);
    }

    #[test]
    fn whole_group_request_extends_popularity() {
        let t = build_trace(&[&[0, 1], &[0, 1]], 2);
        let set = identify_refine(&t);
        assert_eq!(set.n_filecules(), 1);
        assert_eq!(set.popularity(crate::FileculeId(0)), 2);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn subset_request_splits() {
        let t = build_trace(&[&[0, 1, 2], &[0]], 3);
        let set = identify_refine(&t);
        assert_eq!(set.n_filecules(), 2);
        let g0 = set.filecule_of(FileId(0)).unwrap();
        assert_eq!(set.popularity(g0), 2);
        let g12 = set.filecule_of(FileId(1)).unwrap();
        assert_eq!(set.popularity(g12), 1);
        assert_eq!(set.len(g12), 2);
        assert!(set.verify(&t).is_empty());
    }

    #[test]
    fn straddling_request_splits_multiple_groups() {
        // {0,1} and {2,3} exist; then {1,2} splits both.
        let t = build_trace(&[&[0, 1], &[2, 3], &[1, 2]], 4);
        let set = identify_refine(&t);
        assert_eq!(set.n_filecules(), 4);
        assert!(set.verify(&t).is_empty());
        assert_same(&exact::identify(&t), &set);
    }

    #[test]
    fn empty_job_is_noop() {
        let mut r = Refiner::new(3);
        r.add_job(&[FileId(0)]);
        let before = r.n_groups();
        r.add_job(&[]);
        assert_eq!(r.n_groups(), before);
        assert_eq!(r.jobs_seen(), 2);
    }

    #[test]
    fn matches_exact_on_adversarial_patterns() {
        let patterns: [&[&[u32]]; 5] = [
            &[&[0, 1, 2, 3, 4]],
            &[&[0, 1, 2, 3], &[0, 1], &[2, 3], &[1, 2]],
            &[&[0], &[1], &[2], &[0, 1, 2]],
            &[&[0, 1], &[0, 1], &[0, 1, 2], &[2]],
            &[&[4, 3, 2, 1, 0], &[0, 2, 4], &[1, 3]],
        ];
        for jobs in patterns {
            let t = build_trace(jobs, 5);
            assert_same(&exact::identify(&t), &identify_refine(&t));
        }
    }

    #[test]
    fn matches_exact_on_synthetic_trace() {
        let t = TraceSynthesizer::new(SynthConfig::small(31)).generate();
        assert_same(&exact::identify(&t), &identify_refine(&t));
    }

    #[test]
    fn group_count_monotonicity_is_not_required() {
        // Group count can grow by splits but never exceeds file count.
        let t = TraceSynthesizer::new(SynthConfig::small(32)).generate();
        let mut r = Refiner::new(t.n_files());
        let mut prev = 0usize;
        for j in t.job_ids().take(200) {
            r.add_job(t.job_files(j));
            let n = r.n_groups();
            assert!(n <= t.n_files());
            // Refinement can only split existing groups or add new ones,
            // so live-group count never decreases.
            assert!(n >= prev);
            prev = n;
        }
    }
}
