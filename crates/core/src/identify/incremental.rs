//! Online filecule identification.
//!
//! Wraps the [`Refiner`](crate::identify::refine::Refiner) with the
//! bookkeeping a live deployment would need: feed jobs as they arrive (in
//! time order), query the current filecule count at any point, snapshot
//! the partition "as of now", and record the evolution curve (filecule
//! count after every job) that the paper's Section 6/8 dynamic-
//! identification questions ask about.

use crate::filecule::FileculeSet;
use crate::identify::refine::Refiner;
use hep_trace::{FileId, JobId, JobSource, StreamError, Trace};

/// Stateful online identifier.
#[derive(Debug, Clone)]
pub struct IncrementalFilecules {
    refiner: Refiner,
    /// Filecule count after each processed job.
    evolution: Vec<u32>,
    /// Time of the last processed job (for monotonicity checking).
    last_time: u64,
}

impl IncrementalFilecules {
    /// A fresh identifier over a universe of `n_files` files.
    pub fn new(n_files: usize) -> Self {
        Self {
            refiner: Refiner::new(n_files),
            evolution: Vec::new(),
            last_time: 0,
        }
    }

    /// Feed one job's request set (sorted, deduplicated, as stored in a
    /// [`Trace`]). `time` must be non-decreasing across calls.
    ///
    /// # Panics
    /// Panics if `time` goes backwards.
    pub fn observe(&mut self, time: u64, files: &[FileId]) {
        assert!(
            time >= self.last_time,
            "jobs must be fed in time order ({time} < {})",
            self.last_time
        );
        self.last_time = time;
        self.refiner.add_job(files);
        self.evolution.push(self.refiner.n_groups() as u32);
    }

    /// Replay an entire trace through the identifier.
    pub fn observe_trace(&mut self, trace: &Trace) {
        for j in trace.job_ids() {
            self.observe(trace.job(j).start, trace.job_files(j));
        }
    }

    /// Replay any [`JobSource`] through the identifier — the out-of-core
    /// path. Sources visit jobs in non-decreasing start order, matching
    /// the monotonicity contract of [`IncrementalFilecules::observe`].
    /// Post-open I/O failures of a disk-backed source surface as
    /// [`StreamError`].
    pub fn observe_source(&mut self, source: &dyn JobSource) -> Result<(), StreamError> {
        source.for_each_job(&mut |_j, start, files| {
            self.observe(start, files);
        })
    }

    /// Replay a prefix of the trace: jobs with `start < until`.
    pub fn observe_until(&mut self, trace: &Trace, until: u64) -> usize {
        let mut n = 0;
        for j in trace.job_ids() {
            let rec = trace.job(j);
            if rec.start >= until {
                break;
            }
            if rec.start >= self.last_time {
                self.observe(rec.start, trace.job_files(j));
                n += 1;
            }
        }
        n
    }

    /// Current number of filecules.
    pub fn n_filecules(&self) -> usize {
        self.refiner.n_groups()
    }

    /// Number of jobs observed.
    pub fn jobs_seen(&self) -> u64 {
        self.refiner.jobs_seen()
    }

    /// Filecule count after each observed job — the identification
    /// convergence curve.
    pub fn evolution(&self) -> &[u32] {
        &self.evolution
    }

    /// Materialize the current partition.
    pub fn snapshot(&self, trace: &Trace) -> FileculeSet {
        self.refiner.snapshot(trace)
    }

    /// Materialize the current partition against a bare file-size table
    /// (the out-of-core path).
    pub fn snapshot_with_sizes(&self, sizes: &[u64]) -> FileculeSet {
        self.refiner.snapshot_with_sizes(sizes)
    }
}

/// Convenience: the filecule-count evolution curve for a whole trace.
pub fn evolution_curve(trace: &Trace) -> Vec<u32> {
    let mut inc = IncrementalFilecules::new(trace.n_files());
    inc.observe_trace(trace);
    inc.evolution().to_vec()
}

/// Identify filecules as of a time horizon (jobs with `start < until`).
pub fn identify_until(trace: &Trace, until: u64) -> FileculeSet {
    let jobs: Vec<JobId> = trace
        .job_ids()
        .filter(|&j| trace.job(j).start < until)
        .collect();
    crate::identify::exact::identify_jobs(trace, &jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::exact;
    use hep_trace::{SynthConfig, TraceSynthesizer};

    #[test]
    fn evolution_matches_job_count() {
        let t = TraceSynthesizer::new(SynthConfig::small(41)).generate();
        let mut inc = IncrementalFilecules::new(t.n_files());
        inc.observe_trace(&t);
        assert_eq!(inc.evolution().len(), t.n_jobs());
        assert_eq!(inc.jobs_seen(), t.n_jobs() as u64);
    }

    #[test]
    fn evolution_is_nondecreasing() {
        let t = TraceSynthesizer::new(SynthConfig::small(42)).generate();
        let curve = evolution_curve(&t);
        for w in curve.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn final_snapshot_matches_offline() {
        let t = TraceSynthesizer::new(SynthConfig::small(43)).generate();
        let mut inc = IncrementalFilecules::new(t.n_files());
        inc.observe_trace(&t);
        let online = inc.snapshot(&t);
        let offline = exact::identify(&t);
        assert_eq!(online.n_filecules(), offline.n_filecules());
        for g in online.ids() {
            assert_eq!(online.files(g), offline.files(g));
            assert_eq!(online.popularity(g), offline.popularity(g));
        }
    }

    #[test]
    fn identify_until_matches_prefix_replay() {
        let t = TraceSynthesizer::new(SynthConfig::small(44)).generate();
        let until = t.horizon() / 2;
        let offline = identify_until(&t, until);
        let mut inc = IncrementalFilecules::new(t.n_files());
        inc.observe_until(&t, until);
        let online = inc.snapshot(&t);
        assert_eq!(online.n_filecules(), offline.n_filecules());
        for g in online.ids() {
            assert_eq!(online.files(g), offline.files(g));
        }
    }

    #[test]
    #[should_panic]
    fn time_regression_panics() {
        let mut inc = IncrementalFilecules::new(2);
        inc.observe(10, &[hep_trace::FileId(0)]);
        inc.observe(5, &[hep_trace::FileId(1)]);
    }

    #[test]
    fn prefix_has_coarser_or_equal_partition() {
        // With fewer jobs, filecules can only be larger (fewer groups
        // covering fewer files); check group count against the full run.
        let t = TraceSynthesizer::new(SynthConfig::small(45)).generate();
        let half = identify_until(&t, t.horizon() / 2);
        let full = exact::identify(&t);
        assert!(half.n_filecules() <= full.n_filecules());
    }
}
