//! Filecule statistics: the data behind Figures 4–9 of the paper.

use crate::filecule::{FileculeId, FileculeSet};
use hep_stats::correlation::{pearson, spearman};
use hep_trace::{DataTier, Trace};
use std::collections::HashSet;

/// The tier of a filecule (the tier of its files; filecules never mix
/// tiers in SAM because datasets are tier-homogeneous — we take the first
/// member's tier).
pub fn filecule_tier(trace: &Trace, set: &FileculeSet, g: FileculeId) -> DataTier {
    trace.file(set.files(g)[0]).tier
}

/// Figure 4: number of distinct users accessing each filecule.
pub fn users_per_filecule(trace: &Trace, set: &FileculeSet) -> Vec<u32> {
    let mut users: Vec<HashSet<u32>> = vec![HashSet::new(); set.n_filecules()];
    for j in trace.job_ids() {
        let user = trace.job(j).user.0;
        let mut seen: Option<FileculeId> = None;
        for &f in trace.job_files(j) {
            if let Some(g) = set.filecule_of(f) {
                // Avoid re-inserting for every file of the same filecule.
                if seen != Some(g) {
                    users[g.index()].insert(user);
                    seen = Some(g);
                }
            }
        }
    }
    users.into_iter().map(|s| s.len() as u32).collect()
}

/// Figure 5: number of distinct filecules each file-traced job touches.
pub fn filecules_per_job(trace: &Trace, set: &FileculeSet) -> Vec<u32> {
    trace
        .job_ids()
        .filter(|&j| trace.job(j).has_file_trace())
        .map(|j| {
            let mut gs: Vec<u32> = trace
                .job_files(j)
                .iter()
                .filter_map(|&f| set.filecule_of(f).map(|g| g.0))
                .collect();
            gs.sort_unstable();
            gs.dedup();
            gs.len() as u32
        })
        .collect()
}

/// Figure 6: filecule byte sizes, grouped by tier.
pub fn sizes_by_tier(trace: &Trace, set: &FileculeSet) -> Vec<(DataTier, Vec<u64>)> {
    group_by_tier(trace, set, |g| set.size_bytes(g))
}

/// Figure 7: files per filecule, grouped by tier.
pub fn file_counts_by_tier(trace: &Trace, set: &FileculeSet) -> Vec<(DataTier, Vec<u64>)> {
    group_by_tier(trace, set, |g| set.len(g) as u64)
}

/// Figure 8: filecule popularity (request counts), grouped by tier.
pub fn popularity_by_tier(trace: &Trace, set: &FileculeSet) -> Vec<(DataTier, Vec<u64>)> {
    group_by_tier(trace, set, |g| u64::from(set.popularity(g)))
}

fn group_by_tier<F: Fn(FileculeId) -> u64>(
    trace: &Trace,
    set: &FileculeSet,
    value: F,
) -> Vec<(DataTier, Vec<u64>)> {
    let mut out: Vec<(DataTier, Vec<u64>)> = Vec::new();
    for g in set.ids() {
        let tier = filecule_tier(trace, set, g);
        let v = value(g);
        match out.iter_mut().find(|(t, _)| *t == tier) {
            Some((_, vs)) => vs.push(v),
            None => out.push((tier, vec![v])),
        }
    }
    // Paper figure order: root-tuple, reconstructed, thumbnail, rest.
    let rank = |t: DataTier| match t {
        DataTier::RootTuple => 0,
        DataTier::Reconstructed => 1,
        DataTier::Thumbnail => 2,
        DataTier::Raw => 3,
        DataTier::Other => 4,
    };
    out.sort_by_key(|&(t, _)| rank(t));
    out
}

/// Figure 9: requests per filecule, whole trace.
pub fn popularity_all(set: &FileculeSet) -> Vec<u32> {
    set.ids().map(|g| set.popularity(g)).collect()
}

/// Section 3 claim check: correlation between filecule popularity and
/// filecule size. Returns `(pearson, spearman)`; the paper reports "no
/// correlation".
pub fn size_popularity_correlation(set: &FileculeSet) -> (f64, f64) {
    let sizes: Vec<f64> = set.ids().map(|g| set.size_bytes(g) as f64).collect();
    let pops: Vec<f64> = set.ids().map(|g| f64::from(set.popularity(g))).collect();
    (pearson(&sizes, &pops), spearman(&sizes, &pops))
}

/// Aggregate headline statistics of a partition.
#[derive(Debug, Clone)]
pub struct PartitionStats {
    /// Filecule count.
    pub n_filecules: usize,
    /// Files covered.
    pub n_files: usize,
    /// Mean files per filecule.
    pub mean_files: f64,
    /// Largest filecule in bytes.
    pub max_bytes: u64,
    /// Fraction of filecules with exactly one file ("monatomic").
    pub single_file_fraction: f64,
    /// Fraction of filecules accessed by exactly one user.
    pub single_user_fraction: f64,
    /// Maximum users sharing one filecule.
    pub max_users: u32,
    /// Gini coefficient of filecule popularity (0 = uniform interest,
    /// -> 1 = all requests on one filecule). The paper's flattened
    /// popularity shows up as a moderate value here.
    pub popularity_gini: f64,
}

/// Compute [`PartitionStats`].
pub fn partition_stats(trace: &Trace, set: &FileculeSet) -> PartitionStats {
    let users = users_per_filecule(trace, set);
    let n = set.n_filecules().max(1);
    let pops: Vec<f64> = set.ids().map(|g| f64::from(set.popularity(g))).collect();
    let popularity_gini = if pops.is_empty() {
        0.0
    } else {
        hep_stats::gini(&pops)
    };
    PartitionStats {
        n_filecules: set.n_filecules(),
        n_files: set.n_assigned_files(),
        mean_files: set.n_assigned_files() as f64 / n as f64,
        max_bytes: set.largest_by_bytes().map(|(_, b)| b).unwrap_or(0),
        single_file_fraction: set.ids().filter(|&g| set.len(g) == 1).count() as f64 / n as f64,
        single_user_fraction: users.iter().filter(|&&u| u == 1).count() as f64 / n as f64,
        max_users: users.iter().copied().max().unwrap_or(0),
        popularity_gini,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::exact::identify;
    use hep_trace::{FileId, NodeId, TraceBuilder, MB};

    fn trace_with_users() -> (Trace, FileculeSet) {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u0 = b.add_user();
        let u1 = b.add_user();
        let f: Vec<FileId> = (0..5)
            .map(|i| b.add_file((i + 1) * MB, DataTier::Thumbnail))
            .collect();
        let rt = b.add_file(10 * MB, DataTier::RootTuple);
        // {0,1} shared by two users; {2} one user; {3,4} one user; {rt} u1.
        b.add_job(u0, s, NodeId(0), DataTier::Thumbnail, 0, 1, &[f[0], f[1]]);
        b.add_job(
            u1,
            s,
            NodeId(0),
            DataTier::Thumbnail,
            2,
            3,
            &[f[0], f[1], f[2]],
        );
        b.add_job(u0, s, NodeId(0), DataTier::Thumbnail, 4, 5, &[f[3], f[4]]);
        b.add_job(u1, s, NodeId(0), DataTier::RootTuple, 6, 7, &[rt]);
        let t = b.build().unwrap();
        let set = identify(&t);
        (t, set)
    }

    #[test]
    fn users_per_filecule_counts_distinct() {
        let (t, set) = trace_with_users();
        let users = users_per_filecule(&t, &set);
        let g01 = set.filecule_of(FileId(0)).unwrap();
        let g2 = set.filecule_of(FileId(2)).unwrap();
        assert_eq!(users[g01.index()], 2);
        assert_eq!(users[g2.index()], 1);
    }

    #[test]
    fn filecules_per_job_counts_distinct_groups() {
        let (t, set) = trace_with_users();
        let fpj = filecules_per_job(&t, &set);
        // Jobs in time order: {0,1}=1 group; {0,1,2}=2; {3,4}=1; {rt}=1.
        assert_eq!(fpj, vec![1, 2, 1, 1]);
    }

    #[test]
    fn tier_grouping_orders_tiers() {
        let (t, set) = trace_with_users();
        let by_tier = file_counts_by_tier(&t, &set);
        assert_eq!(by_tier[0].0, DataTier::RootTuple);
        assert_eq!(by_tier[1].0, DataTier::Thumbnail);
        let thumb_counts: u64 = by_tier[1].1.iter().sum();
        assert_eq!(thumb_counts, 5);
    }

    #[test]
    fn sizes_by_tier_sums_file_sizes() {
        let (t, set) = trace_with_users();
        let by_tier = sizes_by_tier(&t, &set);
        let (_, rt_sizes) = &by_tier[0];
        assert_eq!(rt_sizes, &vec![10 * MB]);
    }

    #[test]
    fn popularity_all_matches_set() {
        let (t, set) = trace_with_users();
        let pops = popularity_all(&set);
        assert_eq!(pops.len(), set.n_filecules());
        let g01 = set.filecule_of(FileId(0)).unwrap();
        assert_eq!(pops[g01.index()], 2);
        let _ = t;
    }

    #[test]
    fn partition_stats_fields() {
        let (t, set) = trace_with_users();
        let st = partition_stats(&t, &set);
        assert_eq!(st.n_filecules, 4);
        assert_eq!(st.n_files, 6);
        assert_eq!(st.max_users, 2);
        assert!((st.single_file_fraction - 0.5).abs() < 1e-9); // {2} and {rt}
        assert!((st.single_user_fraction - 0.75).abs() < 1e-9);
        // Largest by bytes: {3,4} = 4+5 MB = 9 MB vs {rt} = 10 MB.
        assert_eq!(st.max_bytes, 10 * MB);
        assert!((0.0..=1.0).contains(&st.popularity_gini));
    }

    #[test]
    fn correlation_runs() {
        let (_, set) = trace_with_users();
        let (p, s) = size_popularity_correlation(&set);
        assert!(p.abs() <= 1.0 && s.abs() <= 1.0);
    }
}
