//! Count-min frequency sketch with periodic aging.
//!
//! Backing store for TinyLFU-style admission policies in `cachesim`: a
//! fixed-size 2-D counter array that over-approximates how often each key
//! has been seen. The classic guarantee (Cormode & Muthukrishnan 2005)
//! holds per row: the estimate never under-counts, and with width `w` the
//! expected over-count is `N / w` for `N` recorded events; taking the
//! minimum over `d` independent rows drives the error probability down
//! exponentially in `d`.
//!
//! Two departures from the textbook sketch, both standard in cache
//! admission practice (TinyLFU, Einziger et al. 2017):
//!
//! * **4-bit-style aging**: after every `window` records, all counters are
//!   halved (and the sample count with them), so the sketch tracks *recent*
//!   popularity instead of all-time popularity;
//! * **saturation**: counters clamp at `u32::MAX` instead of wrapping.
//!
//! Everything is deterministic: row hashes are fixed splitmix64-finalizer
//! mixes of `(seed, row, key)`, so two sketches fed the same key sequence
//! are bit-identical — the same discipline the rest of the workspace uses
//! for reproducible parallel replay.

/// The splitmix64 finalizer: a cheap, well-mixed 64 → 64 bit permutation.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A count-min sketch over `u64` keys with halving-based aging.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// Row-major `depth × width` counter matrix.
    rows: Vec<u32>,
    /// Counters per row; always a power of two so indexing is a mask.
    width: usize,
    depth: usize,
    /// Per-instance hash seed (deterministic unless the caller varies it).
    seed: u64,
    /// Records since the last aging pass.
    since_aging: u64,
    /// Halve all counters after this many records; `0` disables aging.
    window: u64,
    /// Decayed total of recorded events (halved alongside the counters).
    samples: u64,
}

impl CountMinSketch {
    /// Build a sketch with at least `width` counters per row (rounded up
    /// to a power of two, minimum 16) and `depth` rows (minimum 1).
    /// `window` is the aging period in records; 0 means never age.
    pub fn new(width: usize, depth: usize, window: u64, seed: u64) -> Self {
        let width = width.max(16).next_power_of_two();
        let depth = depth.max(1);
        CountMinSketch {
            rows: vec![0; width * depth],
            width,
            depth,
            seed,
            since_aging: 0,
            window,
            samples: 0,
        }
    }

    /// A sketch sized for a keyspace of `n_keys` items: width ≈ 4× the
    /// keyspace (so the expected collision inflation stays below a
    /// quarter-count per key per row), depth 4, aging window 16× the
    /// keyspace. This is the configuration `cachesim`'s TinyLFU uses.
    pub fn for_keyspace(n_keys: usize, seed: u64) -> Self {
        let width = n_keys.saturating_mul(4).clamp(16, 1 << 22);
        Self::new(width, 4, (n_keys as u64).saturating_mul(16).max(1024), seed)
    }

    /// Counter index of `key` in `row`.
    #[inline]
    fn index(&self, row: usize, key: u64) -> usize {
        let h = mix64(self.seed ^ (row as u64).wrapping_mul(0xa076_1d64_78bd_642f) ^ key);
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Record one occurrence of `key`.
    pub fn record(&mut self, key: u64) {
        for row in 0..self.depth {
            let i = self.index(row, key);
            self.rows[i] = self.rows[i].saturating_add(1);
        }
        self.samples = self.samples.saturating_add(1);
        if self.window > 0 {
            self.since_aging += 1;
            if self.since_aging >= self.window {
                self.age();
            }
        }
    }

    /// Estimated occurrence count of `key`: never below the true (decayed)
    /// count, over by at most `e / width` of the sample mass per row in
    /// expectation.
    pub fn estimate(&self, key: u64) -> u32 {
        (0..self.depth)
            .map(|row| self.rows[self.index(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Decayed number of recorded events (halved with the counters).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Halve every counter — the TinyLFU "reset" that makes the sketch
    /// track recent popularity. Called automatically every `window`
    /// records; public so tests and callers can force an aging step.
    pub fn age(&mut self) {
        for c in &mut self.rows {
            *c >>= 1;
        }
        self.samples >>= 1;
        self.since_aging = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal deterministic LCG so the tests need no external RNG crate.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn never_undercounts() {
        let mut sk = CountMinSketch::new(64, 4, 0, 42);
        let mut rng = Lcg(7);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..2_000 {
            let key = rng.next() % 200;
            sk.record(key);
            *truth.entry(key).or_insert(0u32) += 1;
        }
        for (&key, &count) in &truth {
            assert!(
                sk.estimate(key) >= count,
                "estimate({key}) = {} < true {count}",
                sk.estimate(key)
            );
        }
    }

    #[test]
    fn overcount_stays_within_epsilon_bound() {
        // Classic bound: per row, E[over-count] = N / width; the min over
        // 4 rows is far tighter. Allow 4 × N / width as generous slack —
        // a broken hash (all keys in one bucket) blows past it instantly.
        let width = 1024;
        let n = 8_192u32;
        let mut sk = CountMinSketch::new(width, 4, 0, 3);
        let mut rng = Lcg(99);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..n {
            let key = rng.next() % 4_000;
            sk.record(key);
            *truth.entry(key).or_insert(0u32) += 1;
        }
        let slack = 4 * n / width as u32;
        for (&key, &count) in &truth {
            let est = sk.estimate(key);
            assert!(
                est <= count + slack,
                "estimate({key}) = {est} exceeds true {count} + slack {slack}"
            );
        }
    }

    #[test]
    fn aging_halves_counts_and_samples() {
        let mut sk = CountMinSketch::new(64, 4, 0, 1);
        for _ in 0..8 {
            sk.record(5);
        }
        assert_eq!(sk.estimate(5), 8);
        assert_eq!(sk.samples(), 8);
        sk.age();
        assert_eq!(sk.estimate(5), 4);
        assert_eq!(sk.samples(), 4);
    }

    #[test]
    fn automatic_aging_fires_at_window() {
        let mut sk = CountMinSketch::new(64, 4, 10, 1);
        for _ in 0..10 {
            sk.record(3);
        }
        // The 10th record triggered the halving: 10 → 5.
        assert_eq!(sk.estimate(3), 5);
        assert_eq!(sk.samples(), 5);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CountMinSketch::for_keyspace(100, 7);
        let mut b = CountMinSketch::for_keyspace(100, 7);
        let mut rng = Lcg(1);
        for _ in 0..500 {
            let key = rng.next() % 100;
            a.record(key);
            b.record(key);
        }
        for key in 0..100 {
            assert_eq!(a.estimate(key), b.estimate(key));
        }
    }

    #[test]
    fn seed_changes_collision_pattern_not_guarantee() {
        let mut a = CountMinSketch::new(16, 1, 0, 1);
        let mut b = CountMinSketch::new(16, 1, 0, 2);
        for key in 0..64 {
            a.record(key);
            b.record(key);
        }
        // Both still never under-count even at heavy collision load.
        for key in 0..64 {
            assert!(a.estimate(key) >= 1);
            assert!(b.estimate(key) >= 1);
        }
    }
}
