//! Filecule dynamics across time windows.
//!
//! Section 8 of the paper asks: "How dynamic are \[filecules\]? Do files stay
//! in the same filecules or do they change over time? […] are two filecules
//! that contain the same file identical?" This module identifies filecules
//! independently in consecutive time windows and measures how much the
//! groups containing a given file agree across windows.

use crate::filecule::FileculeSet;
use crate::identify::exact::identify_jobs;
use hep_trace::{JobId, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Identify filecules independently in `n_windows` equal-length time
/// windows of the trace (by job start time).
///
/// # Panics
/// Panics if `n_windows == 0`.
pub fn windows(trace: &Trace, n_windows: usize) -> Vec<FileculeSet> {
    assert!(n_windows > 0, "need at least one window");
    let horizon = trace.horizon() + 1;
    let width = horizon.div_ceil(n_windows as u64).max(1);
    let mut buckets: Vec<Vec<JobId>> = vec![Vec::new(); n_windows];
    for j in trace.job_ids() {
        let w = ((trace.job(j).start / width) as usize).min(n_windows - 1);
        buckets[w].push(j);
    }
    buckets
        .into_iter()
        .map(|jobs| identify_jobs(trace, &jobs))
        .collect()
}

/// Agreement between two partitions (e.g. consecutive time windows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Files assigned in both partitions.
    pub shared_files: usize,
    /// Mean Jaccard similarity between a file's group in `a` and in `b`,
    /// averaged over shared files.
    pub mean_jaccard: f64,
    /// Fraction of shared files whose two groups are identical sets.
    pub identical_fraction: f64,
}

/// Measure agreement: for every file assigned in both partitions, compare
/// the member sets of its two filecules by Jaccard similarity.
pub fn stability(a: &FileculeSet, b: &FileculeSet, n_files: usize) -> StabilityReport {
    let mut shared = 0usize;
    let mut jaccard_sum = 0.0f64;
    let mut identical = 0usize;
    for fi in 0..n_files {
        let f = hep_trace::FileId(fi as u32);
        let (Some(ga), Some(gb)) = (a.filecule_of(f), b.filecule_of(f)) else {
            continue;
        };
        shared += 1;
        let sa: HashSet<_> = a.files(ga).iter().copied().collect();
        let sb: HashSet<_> = b.files(gb).iter().copied().collect();
        let inter = sa.intersection(&sb).count();
        let union = sa.len() + sb.len() - inter;
        let j = inter as f64 / union as f64;
        jaccard_sum += j;
        if (j - 1.0).abs() < 1e-12 {
            identical += 1;
        }
    }
    StabilityReport {
        shared_files: shared,
        mean_jaccard: if shared == 0 {
            1.0
        } else {
            jaccard_sum / shared as f64
        },
        identical_fraction: if shared == 0 {
            1.0
        } else {
            identical as f64 / shared as f64
        },
    }
}

/// Stability of consecutive window pairs over the whole trace.
pub fn window_stability(trace: &Trace, n_windows: usize) -> Vec<StabilityReport> {
    let ws = windows(trace, n_windows);
    ws.windows(2)
        .map(|pair| stability(&pair[0], &pair[1], trace.n_files()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_trace::{DataTier, FileId, NodeId, SynthConfig, TraceBuilder, TraceSynthesizer, MB};

    fn trace_stable_groups() -> Trace {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u = b.add_user();
        let f: Vec<FileId> = (0..4)
            .map(|_| b.add_file(MB, DataTier::Thumbnail))
            .collect();
        // Same request pattern in two halves of time: stable filecules.
        b.add_job(u, s, NodeId(0), DataTier::Thumbnail, 0, 1, &[f[0], f[1]]);
        b.add_job(u, s, NodeId(0), DataTier::Thumbnail, 10, 11, &[f[2], f[3]]);
        b.add_job(
            u,
            s,
            NodeId(0),
            DataTier::Thumbnail,
            100,
            101,
            &[f[0], f[1]],
        );
        b.add_job(
            u,
            s,
            NodeId(0),
            DataTier::Thumbnail,
            110,
            111,
            &[f[2], f[3]],
        );
        b.build().unwrap()
    }

    #[test]
    fn stable_pattern_perfect_agreement() {
        let t = trace_stable_groups();
        let reports = window_stability(&t, 2);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.shared_files, 4);
        assert!((r.mean_jaccard - 1.0).abs() < 1e-12);
        assert!((r.identical_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn changed_pattern_reduces_agreement() {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u = b.add_user();
        let f: Vec<FileId> = (0..4)
            .map(|_| b.add_file(MB, DataTier::Thumbnail))
            .collect();
        // First half: {0,1,2,3} together. Second half: {0,1} and {2,3}.
        b.add_job(
            u,
            s,
            NodeId(0),
            DataTier::Thumbnail,
            0,
            1,
            &[f[0], f[1], f[2], f[3]],
        );
        b.add_job(
            u,
            s,
            NodeId(0),
            DataTier::Thumbnail,
            100,
            101,
            &[f[0], f[1]],
        );
        b.add_job(
            u,
            s,
            NodeId(0),
            DataTier::Thumbnail,
            110,
            111,
            &[f[2], f[3]],
        );
        let t = b.build().unwrap();
        let reports = window_stability(&t, 2);
        let r = &reports[0];
        assert_eq!(r.shared_files, 4);
        assert!((r.mean_jaccard - 0.5).abs() < 1e-12);
        assert_eq!(r.identical_fraction, 0.0);
    }

    #[test]
    fn disjoint_windows_report_vacuous_agreement() {
        let mut b = TraceBuilder::new();
        let d = b.add_domain(".gov");
        let s = b.add_site(d);
        let u = b.add_user();
        let f0 = b.add_file(MB, DataTier::Thumbnail);
        let f1 = b.add_file(MB, DataTier::Thumbnail);
        b.add_job(u, s, NodeId(0), DataTier::Thumbnail, 0, 1, &[f0]);
        b.add_job(u, s, NodeId(0), DataTier::Thumbnail, 100, 101, &[f1]);
        let t = b.build().unwrap();
        let reports = window_stability(&t, 2);
        assert_eq!(reports[0].shared_files, 0);
        assert_eq!(reports[0].mean_jaccard, 1.0);
    }

    #[test]
    fn windows_cover_all_jobs() {
        let t = TraceSynthesizer::new(SynthConfig::small(61)).generate();
        let ws = windows(&t, 4);
        assert_eq!(ws.len(), 4);
        // Jaccard/stability must be in range on real-ish data.
        for pair in ws.windows(2) {
            let r = stability(&pair[0], &pair[1], t.n_files());
            assert!((0.0..=1.0).contains(&r.mean_jaccard));
            assert!((0.0..=1.0).contains(&r.identical_fraction));
            assert!(r.identical_fraction <= r.mean_jaccard + 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn zero_windows_panics() {
        let t = trace_stable_groups();
        let _ = windows(&t, 0);
    }
}
