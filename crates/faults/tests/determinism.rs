//! Determinism guarantees of the fault-schedule generator.
//!
//! `FaultPlan`'s contract mirrors the trace synthesizer's: the schedule
//! depends only on the `FaultConfig`, dimensions, and seed — not on the
//! rayon pool it happens to be built in. These tests pin that down by
//! building the same plan under pools of 1, 2 and 8 threads and comparing
//! the serialized bytes (mirroring `crates/trace/tests/parallel_synth.rs`).

use hep_faults::{FaultConfig, FaultPlan};

const DAY: u64 = 86_400;

fn plan_bytes_with_threads(cfg: &FaultConfig, threads: usize) -> Vec<u8> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build scoped rayon pool");
    let plan = pool.install(|| FaultPlan::build(cfg, 64, 365 * DAY, 0xD0D0_2006));
    serde_json::to_vec(&plan).expect("serialize plan")
}

#[test]
fn bit_identical_across_thread_counts() {
    for cfg in [
        FaultConfig::severity(0.1),
        FaultConfig::severity(0.5),
        FaultConfig::default()
            .with_outages(0.05, 12.0 * 3600.0)
            .with_degraded_links(0.3, 0.5)
            .with_transfer_failures(0.2),
    ] {
        let reference = plan_bytes_with_threads(&cfg, 1);
        for threads in [2, 8] {
            let parallel = plan_bytes_with_threads(&cfg, threads);
            assert_eq!(
                parallel, reference,
                "fault plan built with {threads} rayon threads diverged from the 1-thread reference"
            );
        }
    }
}

#[test]
fn plans_differ_by_seed_but_not_by_rebuild() {
    let cfg = FaultConfig::severity(0.2);
    let a = FaultPlan::build(&cfg, 16, 30 * DAY, 1);
    let b = FaultPlan::build(&cfg, 16, 30 * DAY, 1);
    let c = FaultPlan::build(&cfg, 16, 30 * DAY, 2);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn transfer_outcomes_are_evaluation_order_independent() {
    let cfg = FaultConfig::default().with_transfer_failures(0.3);
    let plan = FaultPlan::build(&cfg, 4, 30 * DAY, 9);
    let forward: Vec<_> = (0..1000).map(|k| plan.outcome(k)).collect();
    let mut backward: Vec<_> = (0..1000).rev().map(|k| plan.outcome(k)).collect();
    backward.reverse();
    assert_eq!(forward, backward);
}
