//! Property-based invariants for the deterministic retry/backoff model.
//!
//! The retry model is the one piece of the fault subsystem every consumer
//! (replication fallback, transfer scheduling, swarm joins, cachesim's
//! cold-storage hook) leans on, so its contract is pinned over arbitrary
//! configurations rather than a handful of examples:
//!
//! * backoff intervals are monotone non-decreasing up to the cap (for any
//!   `backoff_factor >= 1`);
//! * accumulated delay never exceeds the timeout budget;
//! * attempt counts never exceed `max_retries + 1`, and certain failure
//!   with a generous budget exhausts exactly that maximum;
//! * outcomes are pure in `(seed, key)`.

use hep_faults::{FaultConfig, RetryModel, TransferOutcome};
use proptest::prelude::*;

/// Arbitrary-but-valid retry configurations, expressed through
/// [`FaultConfig`] so the properties cover the same construction path the
/// simulators use ([`RetryModel::from_config`]).
fn retry_configs() -> impl Strategy<Value = FaultConfig> {
    (
        0.0f64..=1.0,    // transfer_failure_p
        0u32..=8,        // max_retries
        0.0f64..=120.0,  // backoff_base_secs
        1.0f64..=4.0,    // backoff_factor (>= 1: backoff never shrinks)
        0.0f64..=600.0,  // backoff_cap_secs
        0.0f64..=7200.0, // timeout_secs
    )
        .prop_map(|(p, retries, base, factor, cap, timeout)| FaultConfig {
            transfer_failure_p: p,
            max_retries: retries,
            backoff_base_secs: base,
            backoff_factor: factor,
            backoff_cap_secs: cap,
            timeout_secs: timeout,
            ..FaultConfig::default()
        })
}

proptest! {
    #[test]
    fn backoff_is_monotone_up_to_the_cap(cfg in retry_configs()) {
        let m = RetryModel::from_config(&cfg);
        let mut prev = 0.0f64;
        for retry in 1..=(m.max_retries.max(1) + 4) {
            let b = m.backoff_secs(retry);
            prop_assert!(b >= prev - 1e-12, "backoff shrank: {prev} -> {b}");
            prop_assert!(b <= m.backoff_cap_secs + 1e-12, "backoff {b} above cap");
            prev = b;
        }
    }

    #[test]
    fn delay_never_exceeds_the_timeout_budget(
        cfg in retry_configs(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let m = RetryModel::from_config(&cfg);
        let o = m.outcome(seed, key);
        prop_assert!(
            o.delay_secs <= m.timeout_secs + 1e-9,
            "delay {} exceeds budget {}",
            o.delay_secs,
            m.timeout_secs
        );
        prop_assert!(o.delay_secs >= 0.0);
    }

    #[test]
    fn attempts_never_exceed_the_configured_maximum(
        cfg in retry_configs(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let m = RetryModel::from_config(&cfg);
        let o = m.outcome(seed, key);
        prop_assert!(o.attempts >= 1);
        prop_assert!(
            o.attempts <= m.max_retries + 1,
            "{} attempts with max_retries {}",
            o.attempts,
            m.max_retries
        );
        prop_assert_eq!(o.retries(), o.attempts - 1);
    }

    #[test]
    fn certain_failure_with_budget_exhausts_exactly_max_attempts(
        cfg in retry_configs(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let mut m = RetryModel::from_config(&cfg);
        m.failure_p = 1.0;
        // A budget generous enough that the timeout can never trigger
        // first: the sum of every capped backoff interval.
        m.timeout_secs = (1..=m.max_retries)
            .map(|r| m.backoff_secs(r))
            .sum::<f64>()
            + 1.0;
        let o = m.outcome(seed, key);
        prop_assert!(o.failed);
        prop_assert_eq!(o.attempts, m.max_retries + 1);
    }

    #[test]
    fn outcomes_are_pure_in_seed_and_key(
        cfg in retry_configs(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let m = RetryModel::from_config(&cfg);
        prop_assert_eq!(m.outcome(seed, key), m.outcome(seed, key));
    }

    #[test]
    fn zero_failure_probability_is_always_clean(
        cfg in retry_configs(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let mut m = RetryModel::from_config(&cfg);
        m.failure_p = 0.0;
        prop_assert_eq!(m.outcome(seed, key), TransferOutcome::CLEAN);
    }
}
