//! # hep-faults
//!
//! Deterministic fault injection for the filecules reproduction
//! (HPDC 2006).
//!
//! The paper's resource-management results (Sections 5–6) assume perfectly
//! reliable sites and lossless transfers. Real SAM operations were not
//! like that: the D0 experience report (cs/0306114) documents station
//! outages and transfer retries as routine, and the wide-area transport
//! literature (GridFTP, cs/0103022) treats fault-tolerant transfer and
//! replica fallback as first-class concerns. This crate models those
//! conditions so the replay simulators can quantify *graceful
//! degradation* — how far the filecule advantage survives churn.
//!
//! Three fault classes, all driven by one [`FaultConfig`]:
//!
//! * **site outages** — each site alternates exponential up/down
//!   intervals;
//! * **transfer failures** — per-attempt Bernoulli failure with capped
//!   exponential backoff and a timeout budget ([`RetryModel`]);
//! * **degraded links** — intervals during which a site's ingress runs at
//!   a fraction of nominal bandwidth.
//!
//! A fourth class lives below the simulated world: the [`io`] module
//! injects deterministic faults (transient EIO, short reads, torn
//! writes) into the `IoBackend` paths the out-of-core trace readers
//! use, and wraps them in a retry/backoff adapter reusing
//! [`RetryModel`]'s budget — so the streaming pipeline itself can be
//! soak-tested under flaky storage.
//!
//! [`FaultPlan::build`] materializes a schedule from config + seed using
//! the workspace's [`SeedStream`](hep_stats::SeedStream) substream
//! discipline: per-site intervals come from counter-derived substreams and
//! transfer outcomes are pure hashes of `(seed, key)`, so a plan — and any
//! replay under it — is bit-identical for a given seed at any thread
//! count and any evaluation order.
//!
//! The consumers live in their own crates: `replication` gains
//! fault-aware variants of its placement evaluators (down replicas fall
//! back to the next-nearest live copy or remote storage), `transfer`
//! folds retry/backoff and degraded-rate delay into transfer time, and
//! `cachesim` adapts a [`FaultPlan`] through its `ColdStorageFaults`
//! hook, classifying each miss as fetched, delayed, or failed. With
//! `FaultConfig::default()` (no faults) every one of those paths is
//! bit-identical to its fault-free sibling — guarded by tests in each
//! crate. This crate deliberately sits *below* all of them (it knows
//! traces, not simulators), so the shared `hep-runctx` context can carry
//! an `Option<&FaultPlan>` into any simulator without a cycle.

#![warn(missing_docs)]

pub mod config;
pub mod io;
pub mod plan;
pub mod retry;

pub use config::FaultConfig;
pub use io::{faulty_retrying_io, FaultyIo, IoFaultConfig, RetryingIo};
pub use plan::{FaultPlan, Interval};
pub use retry::{lane, transfer_key, RetryModel, TransferOutcome};
