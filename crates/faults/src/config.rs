//! Fault-model parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the deterministic fault model.
///
/// Three independent fault classes, each disabled by its default value so
/// that `FaultConfig::default()` is the *fault-free* configuration — replay
/// under it is bit-identical to the fault-unaware code paths:
///
/// * **site outages** — every site alternates exponentially distributed
///   up and down intervals; [`outage_fraction`](Self::outage_fraction) is
///   the long-run fraction of time a site is down and
///   [`mean_outage_secs`](Self::mean_outage_secs) the mean length of one
///   outage (the D0 operational report, cs/0306114, documents station
///   outages as routine);
/// * **transfer failures** — each wide-area transfer attempt fails with
///   probability [`transfer_failure_p`](Self::transfer_failure_p) and is
///   retried with capped exponential backoff under a total timeout budget
///   (the fault-tolerant transport semantics of GridFTP, cs/0103022);
/// * **degraded links** — sites alternate intervals during which their
///   ingress runs at [`degraded_rate`](Self::degraded_rate) of nominal
///   bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Long-run fraction of time each site is down. `0.0` disables
    /// outages entirely. Must be in `[0, 1)`.
    pub outage_fraction: f64,
    /// Mean duration of a single outage, seconds (exponential).
    pub mean_outage_secs: f64,
    /// Probability that one transfer attempt fails. `0.0` disables
    /// transfer faults. Must be in `[0, 1]` (`1.0` = every attempt fails).
    pub transfer_failure_p: f64,
    /// Retry attempts after the first try before a transfer is abandoned.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied to the backoff after every failed attempt.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff interval, seconds.
    pub backoff_cap_secs: f64,
    /// Total retry-delay budget per transfer, seconds; once cumulative
    /// backoff would exceed it the transfer is abandoned.
    pub timeout_secs: f64,
    /// Long-run fraction of time each site's link is degraded. `0.0`
    /// disables link degradation. Must be in `[0, 1)`.
    pub degraded_fraction: f64,
    /// Mean duration of a single degraded interval, seconds (exponential).
    pub mean_degraded_secs: f64,
    /// Rate multiplier while degraded (`0.25` = quarter speed). Must be
    /// in `(0, 1]`.
    pub degraded_rate: f64,
}

impl Default for FaultConfig {
    /// The fault-free configuration: no outages, no transfer failures, no
    /// degradation. Retry/backoff knobs carry 2006-era SAM-like defaults
    /// so enabling `transfer_failure_p` alone gives a sensible model.
    fn default() -> Self {
        Self {
            outage_fraction: 0.0,
            mean_outage_secs: 6.0 * 3600.0,
            transfer_failure_p: 0.0,
            max_retries: 4,
            backoff_base_secs: 5.0,
            backoff_factor: 2.0,
            backoff_cap_secs: 300.0,
            timeout_secs: 3600.0,
            degraded_fraction: 0.0,
            mean_degraded_secs: 1800.0,
            degraded_rate: 0.25,
        }
    }
}

impl FaultConfig {
    /// True iff every fault class is disabled — replay under this config
    /// is guaranteed bit-identical to the fault-unaware paths.
    pub fn is_fault_free(&self) -> bool {
        self.outage_fraction == 0.0
            && self.transfer_failure_p == 0.0
            && self.degraded_fraction == 0.0
    }

    /// Enable site outages: down `fraction` of the time, `mean_secs` mean
    /// outage length.
    pub fn with_outages(mut self, fraction: f64, mean_secs: f64) -> Self {
        self.outage_fraction = fraction;
        self.mean_outage_secs = mean_secs;
        self
    }

    /// Enable per-attempt transfer failures with probability `p`.
    pub fn with_transfer_failures(mut self, p: f64) -> Self {
        self.transfer_failure_p = p;
        self
    }

    /// Enable degraded links: degraded `fraction` of the time, running at
    /// `rate` of nominal bandwidth.
    pub fn with_degraded_links(mut self, fraction: f64, rate: f64) -> Self {
        self.degraded_fraction = fraction;
        self.degraded_rate = rate;
        self
    }

    /// A one-knob severity preset for degradation sweeps: sites are down
    /// `severity` of the time (4-hour mean outages), transfer attempts
    /// fail with probability `severity / 2`, and links are degraded to
    /// quarter speed `severity` of the time. `severity = 0` is fault-free.
    pub fn severity(severity: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&severity),
            "severity must be in [0, 1), got {severity}"
        );
        let cfg = Self::default();
        if severity == 0.0 {
            return cfg;
        }
        cfg.with_outages(severity, 4.0 * 3600.0)
            .with_transfer_failures((severity / 2.0).min(0.5))
            .with_degraded_links(severity, 0.25)
    }

    /// Validate every field range, returning a human-readable complaint
    /// for the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.outage_fraction) {
            return Err(format!(
                "outage_fraction must be in [0, 1), got {}",
                self.outage_fraction
            ));
        }
        if !(self.mean_outage_secs.is_finite() && self.mean_outage_secs > 0.0) {
            return Err(format!(
                "mean_outage_secs must be positive, got {}",
                self.mean_outage_secs
            ));
        }
        if !(0.0..=1.0).contains(&self.transfer_failure_p) {
            return Err(format!(
                "transfer_failure_p must be in [0, 1], got {}",
                self.transfer_failure_p
            ));
        }
        if !(self.backoff_base_secs.is_finite() && self.backoff_base_secs >= 0.0) {
            return Err(format!(
                "backoff_base_secs must be non-negative, got {}",
                self.backoff_base_secs
            ));
        }
        if !(self.backoff_factor.is_finite() && self.backoff_factor >= 1.0) {
            return Err(format!(
                "backoff_factor must be >= 1, got {}",
                self.backoff_factor
            ));
        }
        if !(self.backoff_cap_secs.is_finite() && self.backoff_cap_secs >= 0.0) {
            return Err(format!(
                "backoff_cap_secs must be non-negative, got {}",
                self.backoff_cap_secs
            ));
        }
        if !(self.timeout_secs.is_finite() && self.timeout_secs >= 0.0) {
            return Err(format!(
                "timeout_secs must be non-negative, got {}",
                self.timeout_secs
            ));
        }
        if !(0.0..1.0).contains(&self.degraded_fraction) {
            return Err(format!(
                "degraded_fraction must be in [0, 1), got {}",
                self.degraded_fraction
            ));
        }
        if !(self.mean_degraded_secs.is_finite() && self.mean_degraded_secs > 0.0) {
            return Err(format!(
                "mean_degraded_secs must be positive, got {}",
                self.mean_degraded_secs
            ));
        }
        if !(self.degraded_rate.is_finite()
            && self.degraded_rate > 0.0
            && self.degraded_rate <= 1.0)
        {
            return Err(format!(
                "degraded_rate must be in (0, 1], got {}",
                self.degraded_rate
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fault_free_and_valid() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_fault_free());
        cfg.validate().unwrap();
    }

    #[test]
    fn severity_zero_is_fault_free() {
        assert!(FaultConfig::severity(0.0).is_fault_free());
        assert!(!FaultConfig::severity(0.1).is_fault_free());
    }

    #[test]
    fn severity_presets_validate() {
        for s in [0.0, 0.01, 0.1, 0.5, 0.9] {
            FaultConfig::severity(s).validate().unwrap();
        }
    }

    #[test]
    fn builders_enable_classes() {
        let cfg = FaultConfig::default().with_outages(0.1, 100.0);
        assert!(!cfg.is_fault_free());
        assert_eq!(cfg.outage_fraction, 0.1);
        let cfg = FaultConfig::default().with_transfer_failures(0.2);
        assert!(!cfg.is_fault_free());
        let cfg = FaultConfig::default().with_degraded_links(0.3, 0.5);
        assert!(!cfg.is_fault_free());
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        assert!(FaultConfig {
            outage_fraction: 1.0,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            transfer_failure_p: 1.5,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            degraded_rate: 0.0,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            backoff_factor: 0.5,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            mean_outage_secs: 0.0,
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic]
    fn severity_out_of_range_panics() {
        let _ = FaultConfig::severity(1.0);
    }
}
