//! Seeded fault schedules: per-site outage and degraded-link intervals.

use hep_stats::rng::SeedStream;
use hep_stats::Exp;
use hep_trace::{SiteId, Trace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{FaultConfig, RetryModel, TransferOutcome};

/// Half-open interval `[start, end)` in seconds from the trace epoch.
pub type Interval = (u64, u64);

/// A fully materialized fault schedule for one replay.
///
/// Built once from a [`FaultConfig`] + site count + horizon + seed, then
/// queried read-only (all query methods take `&self`) by any number of
/// consumers. Construction draws every site's intervals from its own
/// counter-derived [`SeedStream`] substream, so the plan is bit-identical
/// for a given seed at any rayon thread count — the same discipline the
/// trace synthesizer uses (see `crates/trace/tests/parallel_synth.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    n_sites: usize,
    horizon: u64,
    /// Per-site sorted, disjoint outage intervals.
    outages: Vec<Vec<Interval>>,
    /// Per-site sorted, disjoint degraded-link intervals.
    degraded: Vec<Vec<Interval>>,
    /// Rate multiplier while a link is degraded.
    degraded_rate: f64,
    retry: RetryModel,
    /// Seed of the transfer-outcome hash space.
    transfer_seed: u64,
}

/// Sample alternating up/down intervals over `[0, horizon)` and return the
/// down intervals. `fraction` is the long-run down fraction, `mean_down`
/// the mean down-interval length; both phases are exponential, starting up.
fn alternating_intervals(
    rng: &mut impl rand::Rng,
    fraction: f64,
    mean_down: f64,
    horizon: u64,
) -> Vec<Interval> {
    if fraction <= 0.0 || horizon == 0 {
        return Vec::new();
    }
    // Long-run down fraction f = mean_down / (mean_up + mean_down).
    let mean_up = mean_down * (1.0 - fraction) / fraction;
    let up = Exp::new(mean_up);
    let down = Exp::new(mean_down);
    let end = horizon as f64;
    let mut t = 0.0f64;
    let mut last_end = 0u64;
    let mut out = Vec::new();
    while t < end {
        t += up.sample(rng);
        if t >= end {
            break;
        }
        // Clamp to the previous interval's end: a sub-second up gap can
        // otherwise round into an overlap.
        let start = (t as u64).max(last_end);
        t += down.sample(rng);
        let stop = (t.min(end).ceil() as u64).min(horizon);
        if stop > start {
            out.push((start, stop));
            last_end = stop;
        }
    }
    out
}

/// Locate `t` in a sorted, disjoint interval list: `Some(end)` of the
/// containing interval, or `None` if `t` falls in no interval.
fn containing_end(intervals: &[Interval], t: u64) -> Option<u64> {
    let i = intervals.partition_point(|&(start, _)| start <= t);
    if i == 0 {
        return None;
    }
    let (_, end) = intervals[i - 1];
    (t < end).then_some(end)
}

impl FaultPlan {
    /// Build the schedule for `n_sites` sites over `[0, horizon)` seconds.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`FaultConfig::validate`].
    pub fn build(cfg: &FaultConfig, n_sites: usize, horizon: u64, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FaultConfig: {e}");
        }
        let seeds = SeedStream::new(seed).substream("faults");
        // Each site draws from its own counter-derived substream; the
        // indexed parallel collect preserves site order, so the result is
        // independent of the thread count.
        let outages: Vec<Vec<Interval>> = (0..n_sites)
            .into_par_iter()
            .map(|s| {
                let mut rng = seeds.rng_indexed("site-outages", s as u64);
                alternating_intervals(&mut rng, cfg.outage_fraction, cfg.mean_outage_secs, horizon)
            })
            .collect();
        let degraded: Vec<Vec<Interval>> = (0..n_sites)
            .into_par_iter()
            .map(|s| {
                let mut rng = seeds.rng_indexed("site-degraded", s as u64);
                alternating_intervals(
                    &mut rng,
                    cfg.degraded_fraction,
                    cfg.mean_degraded_secs,
                    horizon,
                )
            })
            .collect();
        Self {
            n_sites,
            horizon,
            outages,
            degraded,
            degraded_rate: cfg.degraded_rate,
            retry: RetryModel::from_config(cfg),
            transfer_seed: seeds.seed("transfers"),
        }
    }

    /// Build the schedule sized to a trace (its site count and horizon).
    pub fn for_trace(cfg: &FaultConfig, trace: &Trace, seed: u64) -> Self {
        Self::build(cfg, trace.n_sites(), trace.horizon(), seed)
    }

    /// An empty (fault-free) plan for `n_sites` sites: every site is
    /// always up at full rate and no transfer ever fails.
    pub fn reliable(n_sites: usize, horizon: u64) -> Self {
        Self {
            n_sites,
            horizon,
            outages: vec![Vec::new(); n_sites],
            degraded: vec![Vec::new(); n_sites],
            degraded_rate: 1.0,
            retry: RetryModel::RELIABLE,
            transfer_seed: 0,
        }
    }

    /// Number of sites the plan covers.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// The plan's horizon, seconds.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// True iff this plan can never perturb a replay: no outages, no
    /// degraded intervals, and a transfer model that never fails.
    pub fn is_fault_free(&self) -> bool {
        self.retry.failure_p == 0.0
            && self.outages.iter().all(Vec::is_empty)
            && self.degraded.iter().all(Vec::is_empty)
    }

    /// Is `site` up at time `t`? Sites outside the plan (scripted tests,
    /// remote storage pseudo-sites) are always up.
    pub fn is_up(&self, site: SiteId, t: u64) -> bool {
        match self.outages.get(site.index()) {
            Some(iv) => containing_end(iv, t).is_none(),
            None => true,
        }
    }

    /// Earliest time `>= t` at which `site` is up (`t` itself if up now).
    pub fn next_up(&self, site: SiteId, t: u64) -> u64 {
        match self.outages.get(site.index()) {
            Some(iv) => containing_end(iv, t).unwrap_or(t),
            None => t,
        }
    }

    /// The rate multiplier of `site`'s link at time `t` (1.0 = nominal).
    pub fn degraded_multiplier(&self, site: SiteId, t: u64) -> f64 {
        match self.degraded.get(site.index()) {
            Some(iv) if containing_end(iv, t).is_some() => self.degraded_rate,
            _ => 1.0,
        }
    }

    /// The outage intervals of `site`, sorted and disjoint.
    pub fn outages(&self, site: SiteId) -> &[Interval] {
        self.outages
            .get(site.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Mean fraction of site-time lost to outages over the horizon.
    pub fn unavailability(&self) -> f64 {
        if self.n_sites == 0 || self.horizon == 0 {
            return 0.0;
        }
        let down: u64 = self
            .outages
            .iter()
            .flat_map(|iv| iv.iter().map(|&(s, e)| e - s))
            .sum();
        down as f64 / (self.n_sites as u64 * self.horizon) as f64
    }

    /// The retry/backoff model transfers run under.
    pub fn retry(&self) -> &RetryModel {
        &self.retry
    }

    /// Seed of the transfer-outcome hash space (for consumers that resolve
    /// outcomes through their own [`RetryModel`] calls).
    pub fn transfer_seed(&self) -> u64 {
        self.transfer_seed
    }

    /// Resolve the outcome of the transfer identified by `key`.
    pub fn outcome(&self, key: u64) -> TransferOutcome {
        self.retry.outcome(self.transfer_seed, key)
    }

    /// Script an extra outage `[from, until)` for `site` — test and
    /// what-if helper. The interval is merged into the schedule (overlaps
    /// with existing outages are coalesced).
    pub fn script_outage(&mut self, site: SiteId, from: u64, until: u64) {
        assert!(until > from, "empty scripted outage");
        assert!(site.index() < self.n_sites, "site out of range");
        let iv = &mut self.outages[site.index()];
        iv.push((from, until));
        iv.sort_unstable();
        let mut merged: Vec<Interval> = Vec::with_capacity(iv.len());
        for &(s, e) in iv.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        *iv = merged;
        self.horizon = self.horizon.max(until);
    }

    /// Override the retry model — test and what-if helper.
    pub fn script_retry(&mut self, retry: RetryModel) {
        self.retry = retry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    #[test]
    fn default_config_builds_empty_plan() {
        let plan = FaultPlan::build(&FaultConfig::default(), 8, 30 * DAY, 42);
        assert!(plan.is_fault_free());
        assert_eq!(plan.unavailability(), 0.0);
        for s in 0..8 {
            assert!(plan.outages(SiteId(s)).is_empty());
            assert!(plan.is_up(SiteId(s), 0));
            assert_eq!(plan.degraded_multiplier(SiteId(s), DAY), 1.0);
        }
    }

    #[test]
    fn reliable_plan_is_fault_free() {
        let plan = FaultPlan::reliable(4, DAY);
        assert!(plan.is_fault_free());
        assert_eq!(plan.outcome(123), TransferOutcome::CLEAN);
    }

    #[test]
    fn outage_fraction_is_roughly_respected() {
        let cfg = FaultConfig::default().with_outages(0.2, 4.0 * 3600.0);
        let plan = FaultPlan::build(&cfg, 32, 365 * DAY, 7);
        let u = plan.unavailability();
        assert!((u - 0.2).abs() < 0.05, "unavailability {u}");
        assert!(!plan.is_fault_free());
    }

    #[test]
    fn intervals_sorted_disjoint_and_clamped() {
        let cfg = FaultConfig::default().with_outages(0.3, 3600.0);
        let plan = FaultPlan::build(&cfg, 16, 30 * DAY, 11);
        for s in 0..16 {
            let iv = plan.outages(SiteId(s));
            for w in iv.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping intervals {w:?}");
            }
            for &(start, end) in iv {
                assert!(start < end);
                assert!(end <= 30 * DAY);
            }
        }
    }

    #[test]
    fn is_up_matches_intervals() {
        let cfg = FaultConfig::default().with_outages(0.3, 3600.0);
        let plan = FaultPlan::build(&cfg, 4, 30 * DAY, 13);
        let site = SiteId(1);
        let iv = plan.outages(site).to_vec();
        assert!(!iv.is_empty(), "expected some outages at 30% downtime");
        for &(start, end) in &iv {
            assert!(!plan.is_up(site, start));
            assert!(!plan.is_up(site, end - 1));
            assert!(plan.is_up(site, end));
            assert_eq!(plan.next_up(site, start), end);
            assert_eq!(plan.next_up(site, end), end);
            if start > 0 {
                // The second before an outage may belong to the previous
                // interval only if they touch; after merging they are
                // disjoint, so it must be up unless another interval ends
                // exactly at `start` (excluded by disjointness).
                assert!(
                    plan.is_up(site, start - 1)
                        || iv.iter().any(|&(_, e)| e > start - 1 && e <= start)
                );
            }
        }
    }

    #[test]
    fn degraded_multiplier_applies_inside_intervals() {
        let cfg = FaultConfig::default().with_degraded_links(0.4, 0.25);
        let plan = FaultPlan::build(&cfg, 4, 30 * DAY, 17);
        let mut seen_degraded = false;
        for s in 0..4 {
            for t in (0..30 * DAY).step_by(DAY as usize / 4) {
                let m = plan.degraded_multiplier(SiteId(s as u16), t);
                assert!(m == 1.0 || m == 0.25);
                seen_degraded |= m == 0.25;
            }
        }
        assert!(seen_degraded, "expected some degraded samples at 40%");
    }

    #[test]
    fn same_seed_same_plan_different_seed_differs() {
        let cfg = FaultConfig::severity(0.2);
        let a = FaultPlan::build(&cfg, 8, 30 * DAY, 1);
        let b = FaultPlan::build(&cfg, 8, 30 * DAY, 1);
        let c = FaultPlan::build(&cfg, 8, 30 * DAY, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn out_of_range_site_is_always_up() {
        let plan = FaultPlan::build(&FaultConfig::severity(0.5), 2, DAY, 3);
        assert!(plan.is_up(SiteId(99), 0));
        assert_eq!(plan.next_up(SiteId(99), 55), 55);
        assert_eq!(plan.degraded_multiplier(SiteId(99), 55), 1.0);
        assert!(plan.outages(SiteId(99)).is_empty());
    }

    #[test]
    fn scripted_outage_merges_overlaps() {
        let mut plan = FaultPlan::reliable(2, DAY);
        plan.script_outage(SiteId(0), 100, 200);
        plan.script_outage(SiteId(0), 150, 300);
        plan.script_outage(SiteId(0), 400, 500);
        assert_eq!(plan.outages(SiteId(0)), &[(100, 300), (400, 500)]);
        assert!(!plan.is_up(SiteId(0), 250));
        assert!(plan.is_up(SiteId(0), 350));
        assert!(plan.is_up(SiteId(1), 250));
        assert!(!plan.is_fault_free());
    }

    #[test]
    fn unavailability_counts_down_time() {
        let mut plan = FaultPlan::reliable(2, 1000);
        plan.script_outage(SiteId(0), 0, 500);
        // 500 down seconds over 2 sites x 1000 s.
        assert!((plan.unavailability() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let cfg = FaultConfig {
            outage_fraction: 2.0,
            ..FaultConfig::default()
        };
        let _ = FaultPlan::build(&cfg, 1, DAY, 0);
    }

    #[test]
    fn plan_serializes() {
        let plan = FaultPlan::build(&FaultConfig::severity(0.1), 4, DAY, 5);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
