//! Deterministic transfer-failure and retry/backoff model.
//!
//! Transfer outcomes are *pure hash functions* of `(seed, key)` rather than
//! draws from a shared RNG: any consumer can evaluate the outcome of any
//! transfer in any order (including in parallel) and always observe the
//! same attempts/delay/failure verdict. This mirrors the counter-derived
//! substream discipline the trace synthesizer uses for thread-count
//! independence.

use hep_stats::rng::splitmix64;
use serde::{Deserialize, Serialize};

use crate::FaultConfig;

/// Fold a sequence of components into one transfer key.
///
/// Consumers build keys from stable identifiers (event index, job id, file
/// id, a [`lane`]) so the same logical transfer always maps to the same
/// outcome regardless of replay order.
pub fn transfer_key(parts: &[u64]) -> u64 {
    let mut state = 0x7E57_AB1E_u64 ^ 0x5EED_0000_0000_0000;
    for &p in parts {
        state = splitmix64(state ^ splitmix64(p));
    }
    state
}

/// Hash a consumer label into a key component, so distinct consumers
/// (replication remote fetches, schedule transfers, swarm seeds, …) draw
/// from decoupled outcome spaces even when their numeric ids collide.
pub fn lane(label: &str) -> u64 {
    let mut state = splitmix64(0xFA17_1A7E);
    for &b in label.as_bytes() {
        state = splitmix64(state ^ u64::from(b));
    }
    state
}

/// Map a 64-bit hash to a uniform double in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The resolved outcome of one logical transfer under the retry model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Attempts made (1 = succeeded first try).
    pub attempts: u32,
    /// Total backoff delay accumulated before the final attempt, seconds.
    pub delay_secs: f64,
    /// True if the transfer was abandoned (retry budget or timeout
    /// exhausted); `delay_secs` then counts the wasted backoff.
    pub failed: bool,
}

impl TransferOutcome {
    /// The outcome of a transfer under a fault-free model: first attempt
    /// succeeds, no delay.
    pub const CLEAN: TransferOutcome = TransferOutcome {
        attempts: 1,
        delay_secs: 0.0,
        failed: false,
    };

    /// Number of retries (attempts after the first).
    pub fn retries(&self) -> u32 {
        self.attempts - 1
    }
}

/// Per-attempt Bernoulli failure with capped exponential backoff and a
/// total timeout budget (the fault-tolerant transport semantics GridFTP
/// documents: retry on failure, back off, give up past a deadline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryModel {
    /// Probability one attempt fails.
    pub failure_p: f64,
    /// Retries allowed after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff interval, seconds.
    pub backoff_cap_secs: f64,
    /// Total backoff budget per transfer, seconds.
    pub timeout_secs: f64,
}

impl RetryModel {
    /// A model that never fails (the `FaultConfig::default()` behaviour).
    pub const RELIABLE: RetryModel = RetryModel {
        failure_p: 0.0,
        max_retries: 0,
        backoff_base_secs: 0.0,
        backoff_factor: 1.0,
        backoff_cap_secs: 0.0,
        timeout_secs: 0.0,
    };

    /// Extract the retry parameters from a [`FaultConfig`].
    pub fn from_config(cfg: &FaultConfig) -> Self {
        Self {
            failure_p: cfg.transfer_failure_p,
            max_retries: cfg.max_retries,
            backoff_base_secs: cfg.backoff_base_secs,
            backoff_factor: cfg.backoff_factor,
            backoff_cap_secs: cfg.backoff_cap_secs,
            timeout_secs: cfg.timeout_secs,
        }
    }

    /// The backoff before retry number `retry` (1-based), seconds.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        (self.backoff_base_secs * self.backoff_factor.powi(retry as i32 - 1))
            .min(self.backoff_cap_secs)
    }

    /// Resolve the outcome of the transfer identified by `key` under
    /// master seed `seed`.
    ///
    /// Pure and order-independent: the attempt sequence is derived from
    /// `splitmix64` mixes of `(seed, key, attempt)`, so two calls with the
    /// same arguments always agree, regardless of thread or replay order.
    pub fn outcome(&self, seed: u64, key: u64) -> TransferOutcome {
        if self.failure_p <= 0.0 {
            return TransferOutcome::CLEAN;
        }
        let base = splitmix64(seed ^ splitmix64(key));
        let mut delay = 0.0f64;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let u = unit_f64(splitmix64(base ^ u64::from(attempts)));
            if u >= self.failure_p {
                return TransferOutcome {
                    attempts,
                    delay_secs: delay,
                    failed: false,
                };
            }
            if attempts > self.max_retries {
                return TransferOutcome {
                    attempts,
                    delay_secs: delay,
                    failed: true,
                };
            }
            let backoff = self.backoff_secs(attempts);
            if delay + backoff > self.timeout_secs {
                return TransferOutcome {
                    attempts,
                    delay_secs: delay,
                    failed: true,
                };
            }
            delay += backoff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: f64) -> RetryModel {
        RetryModel {
            failure_p: p,
            max_retries: 4,
            backoff_base_secs: 5.0,
            backoff_factor: 2.0,
            backoff_cap_secs: 300.0,
            timeout_secs: 3600.0,
        }
    }

    #[test]
    fn reliable_model_is_clean() {
        let m = RetryModel::RELIABLE;
        for key in 0..100 {
            assert_eq!(m.outcome(42, key), TransferOutcome::CLEAN);
        }
    }

    #[test]
    fn zero_p_is_clean_even_with_retry_knobs() {
        let m = model(0.0);
        assert_eq!(m.outcome(7, 99), TransferOutcome::CLEAN);
    }

    #[test]
    fn outcome_is_deterministic() {
        let m = model(0.3);
        for key in 0..500 {
            assert_eq!(m.outcome(1, key), m.outcome(1, key));
        }
    }

    #[test]
    fn outcome_depends_on_seed_and_key() {
        let m = model(0.5);
        let a: Vec<_> = (0..64).map(|k| m.outcome(1, k)).collect();
        let b: Vec<_> = (0..64).map(|k| m.outcome(2, k)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn certain_failure_exhausts_retries() {
        let m = model(1.0);
        let o = m.outcome(3, 17);
        assert!(o.failed);
        assert_eq!(o.attempts, m.max_retries + 1);
        assert_eq!(o.retries(), m.max_retries);
        // Backoffs 5 + 10 + 20 + 40 accumulated before the final attempt.
        assert!((o.delay_secs - 75.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_budget_caps_delay() {
        let mut m = model(1.0);
        m.timeout_secs = 12.0;
        let o = m.outcome(3, 17);
        assert!(o.failed);
        // 5 fits, 5+10 would exceed 12: abandoned after the second attempt.
        assert_eq!(o.attempts, 2);
        assert!((o.delay_secs - 5.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_is_capped() {
        let m = model(0.5);
        assert_eq!(m.backoff_secs(1), 5.0);
        assert_eq!(m.backoff_secs(2), 10.0);
        assert_eq!(m.backoff_secs(10), 300.0);
    }

    #[test]
    fn failure_rate_tracks_p() {
        let m = model(0.2);
        let n = 20_000;
        let first_try_fail =
            (0..n).filter(|&k| m.outcome(9, k).attempts > 1).count() as f64 / n as f64;
        assert!((first_try_fail - 0.2).abs() < 0.02, "{first_try_fail}");
    }

    #[test]
    fn lanes_decouple_key_spaces() {
        let m = model(0.5);
        let a: Vec<_> = (0..64)
            .map(|k| m.outcome(1, transfer_key(&[lane("alpha"), k])))
            .collect();
        let b: Vec<_> = (0..64)
            .map(|k| m.outcome(1, transfer_key(&[lane("beta"), k])))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn transfer_key_order_sensitive() {
        assert_ne!(transfer_key(&[1, 2]), transfer_key(&[2, 1]));
        assert_ne!(transfer_key(&[1]), transfer_key(&[1, 0]));
    }
}
