//! Deterministic I/O fault injection and retrying adapters for the
//! streaming trace readers.
//!
//! The site/transfer fault classes ([`crate::FaultPlan`]) live *inside*
//! the simulated world; this module injects faults *underneath* it, on
//! the [`hep_trace::stream::IoBackend`] paths the out-of-core readers
//! use for every post-open read and scratch-file write — the layer a
//! flaky NFS mount or a failing disk would actually hit.
//!
//! Two composable wrappers:
//!
//! * [`FaultyIo`] — injects transient EIO, short reads, and
//!   truncate-on-write. Each fault draw is a pure hash of
//!   `(seed, lane, offset, attempt)` — the same
//!   [`transfer_key`](crate::transfer_key)/[`lane`](crate::lane)
//!   discipline as [`RetryModel::outcome`] — where the lane hashes the
//!   file name (or scratch tag) and the attempt index counts repeat
//!   operations on the same `(lane, offset)`. Outcomes therefore never
//!   depend on wall-clock time or pointer values, and injected faults
//!   never corrupt delivered bytes: a read either fails cleanly, reads
//!   fewer bytes than asked (correct bytes, shorter), or succeeds; a
//!   torn write persists a prefix at its fixed offset and errors, so a
//!   retried positioned write heals it in place.
//! * [`RetryingIo`] — retries failed operations with [`RetryModel`]'s
//!   capped exponential backoff and total timeout budget, recording
//!   retry/give-up counts via [`hep_obs::record_io_retry`] /
//!   [`hep_obs::record_io_giveup`]. Backoff is *accounted* (and scaled
//!   by [`RetryingIo::with_sleep_scale`] before actually sleeping —
//!   default 0, no real sleep) so soak tests run at full speed.
//!
//! Stacking `RetryingIo(FaultyIo(StdIo))` gives the determinism
//! contract the equivalence suites pin: under any transient-fault rate,
//! a replay that completes is **bit-identical** to the fault-free
//! replay, because retries only re-issue reads — they never alter what
//! is read. Past the budget the typed [`StreamError`] path of the
//! readers reports the failure instead of panicking.
//!
//! [`StreamError`]: hep_trace::StreamError

use crate::retry::{lane, transfer_key, unit_f64};
use crate::RetryModel;
use hep_stats::rng::splitmix64;
use hep_trace::stream::{IoBackend, ReadAt, ReadWriteAt, StdIo, WriteAt};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Salt decoupling read-failure draws from short-read draws at the same
/// `(lane, offset, attempt)`.
const SALT_FAIL: u64 = 0x10;
const SALT_SHORT: u64 = 0x11;
const SALT_TORN: u64 = 0x12;

/// Knobs for deterministic I/O fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultConfig {
    /// Master seed; all fault draws are pure hashes of this plus the
    /// operation's `(lane, offset, attempt)` key.
    pub seed: u64,
    /// Probability one read or write attempt fails with transient EIO.
    pub fail_p: f64,
    /// Probability a non-failing read returns fewer bytes than asked
    /// (the exact-read loop heals these; they cost extra calls, never
    /// correctness).
    pub short_read_p: f64,
    /// Probability a failing write persists a prefix before erroring
    /// (a torn write), instead of failing cleanly without writing.
    pub torn_write_p: f64,
}

impl IoFaultConfig {
    /// Inject nothing (every operation passes through).
    pub const NONE: IoFaultConfig = IoFaultConfig {
        seed: 0,
        fail_p: 0.0,
        short_read_p: 0.0,
        torn_write_p: 0.0,
    };

    /// Transient-failure config: every fault class at rate `p` under
    /// `seed`.
    pub fn transient(seed: u64, p: f64) -> Self {
        IoFaultConfig {
            seed,
            fail_p: p,
            short_read_p: p,
            torn_write_p: p,
        }
    }

    /// True when no fault class can fire.
    pub fn is_none(&self) -> bool {
        self.fail_p <= 0.0 && self.short_read_p <= 0.0 && self.torn_write_p <= 0.0
    }

    /// The uniform draw for `(lane, offset, attempt, salt)` under this
    /// config's seed — pure, thread-count independent.
    fn draw(&self, lane: u64, offset: u64, attempt: u64, salt: u64) -> f64 {
        let key = transfer_key(&[lane, offset, attempt, salt]);
        unit_f64(splitmix64(self.seed ^ splitmix64(key)))
    }
}

/// Shared per-`(lane, offset)` attempt counters, so a retried operation
/// draws a *fresh* fault outcome each attempt and transient faults are
/// actually transient. Shared across handles of one [`FaultyIo`]; the
/// interleaving of concurrent replays can shift which attempts fail,
/// but never what bytes a successful operation delivers.
type AttemptMap = Arc<Mutex<HashMap<(u64, u64), u64>>>;

/// An [`IoBackend`] injecting deterministic faults into every handle it
/// opens. Wraps any inner backend (usually [`StdIo`]).
pub struct FaultyIo<B> {
    inner: B,
    cfg: IoFaultConfig,
    attempts: AttemptMap,
    injected: Arc<AtomicU64>,
}

impl FaultyIo<StdIo> {
    /// Fault-inject the plain filesystem.
    pub fn new(cfg: IoFaultConfig) -> Self {
        Self::wrap(StdIo, cfg)
    }
}

impl<B: IoBackend> FaultyIo<B> {
    /// Fault-inject an arbitrary inner backend.
    pub fn wrap(inner: B, cfg: IoFaultConfig) -> Self {
        FaultyIo {
            inner,
            cfg,
            attempts: Arc::new(Mutex::new(HashMap::new())),
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total faults injected so far (EIO + short reads + torn writes)
    /// across all handles of this backend.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<B: IoBackend> IoBackend for FaultyIo<B> {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn ReadAt>> {
        let file_lane = lane(&path.to_string_lossy());
        Ok(Box::new(FaultyHandle {
            inner: HandleInner::Read(self.inner.open_read(path)?),
            lane: file_lane,
            cfg: self.cfg,
            attempts: self.attempts.clone(),
            injected: self.injected.clone(),
        }))
    }

    fn create_scratch(&self, tag: &str) -> io::Result<Box<dyn ReadWriteAt>> {
        let scratch_lane = lane(tag);
        Ok(Box::new(FaultyHandle {
            inner: HandleInner::ReadWrite(self.inner.create_scratch(tag)?),
            lane: scratch_lane,
            cfg: self.cfg,
            attempts: self.attempts.clone(),
            injected: self.injected.clone(),
        }))
    }
}

/// The wrapped handle: read-only (trace files) or read-write (scratch).
enum HandleInner {
    Read(Box<dyn ReadAt>),
    ReadWrite(Box<dyn ReadWriteAt>),
}

/// One fault-injected handle. Only the primitive `read_at`/`write_at`
/// are intercepted: the exact-read/-write default loops then retry
/// short transfers through the faulty primitives again, so every loop
/// iteration draws its own outcome.
struct FaultyHandle {
    inner: HandleInner,
    lane: u64,
    cfg: IoFaultConfig,
    attempts: AttemptMap,
    injected: Arc<AtomicU64>,
}

impl FaultyHandle {
    /// Next attempt index for `(lane, offset)` — 0 on first touch.
    fn next_attempt(&self, offset: u64) -> u64 {
        let mut map = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
        let n = map.entry((self.lane, offset)).or_insert(0);
        let attempt = *n;
        *n += 1;
        attempt
    }

    fn inject(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

impl ReadAt for FaultyHandle {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let inner: &dyn ReadAt = match &self.inner {
            HandleInner::Read(r) => r.as_ref(),
            HandleInner::ReadWrite(rw) => rw.as_ref(),
        };
        if self.cfg.is_none() {
            return inner.read_at(buf, offset);
        }
        let attempt = self.next_attempt(offset);
        if self.cfg.draw(self.lane, offset, attempt, SALT_FAIL) < self.cfg.fail_p {
            self.inject();
            return Err(io::Error::other("injected transient I/O fault (read)"));
        }
        if buf.len() > 1
            && self.cfg.draw(self.lane, offset, attempt, SALT_SHORT) < self.cfg.short_read_p
        {
            // Short read: deliver the correct prefix only; the caller's
            // exact-read loop resumes at offset + n.
            self.inject();
            let n = buf.len() / 2;
            return inner.read_at(&mut buf[..n], offset);
        }
        inner.read_at(buf, offset)
    }
}

impl WriteAt for FaultyHandle {
    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let inner = match &self.inner {
            HandleInner::Read(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "read-only fault-injected handle",
                ))
            }
            HandleInner::ReadWrite(rw) => rw.as_ref(),
        };
        if self.cfg.is_none() {
            return inner.write_at(buf, offset);
        }
        let attempt = self.next_attempt(offset);
        if self.cfg.draw(self.lane, offset, attempt, SALT_FAIL) < self.cfg.fail_p {
            self.inject();
            if !buf.is_empty()
                && self.cfg.draw(self.lane, offset, attempt, SALT_TORN) < self.cfg.torn_write_p
            {
                // Torn write: persist a prefix at its fixed offset, then
                // fail. A retried positioned write rewrites it in place.
                let n = (buf.len() / 2).max(1);
                inner.write_all_at(&buf[..n], offset)?;
            }
            return Err(io::Error::other("injected transient I/O fault (write)"));
        }
        inner.write_at(buf, offset)
    }
}

/// An [`IoBackend`] that retries failed operations with [`RetryModel`]
/// backoff semantics: up to `max_retries` re-attempts, capped
/// exponential backoff between them, abandoned once the accumulated
/// backoff would exceed `timeout_secs`.
///
/// Retries re-issue the *whole* failed primitive at the same offset, so
/// under a [`FaultyIo`] inner backend a retried operation draws fresh
/// fault outcomes until it succeeds or the budget runs out — delivered
/// bytes are never affected, only whether the operation completes.
/// Every retry and give-up is recorded via
/// [`hep_obs::record_io_retry`] / [`hep_obs::record_io_giveup`].
pub struct RetryingIo<B> {
    inner: B,
    model: RetryModel,
    /// Fraction of each modeled backoff interval actually slept
    /// (default 0.0: backoff is budget accounting only, no wall-clock
    /// delay — tests and sweeps run at full speed).
    sleep_scale: f64,
}

impl<B: IoBackend> RetryingIo<B> {
    /// Retry `inner`'s failures under `model`'s budget.
    pub fn new(inner: B, model: RetryModel) -> Self {
        RetryingIo {
            inner,
            model,
            sleep_scale: 0.0,
        }
    }

    /// Actually sleep `scale` × the modeled backoff before each retry
    /// (0.0 = never sleep, 1.0 = full modeled backoff).
    pub fn with_sleep_scale(mut self, scale: f64) -> Self {
        self.sleep_scale = scale.max(0.0);
        self
    }
}

/// Run `op` under `model`'s retry/backoff budget.
fn with_retries<T>(
    model: &RetryModel,
    sleep_scale: f64,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut delay = 0.0f64;
    let mut retry = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                retry += 1;
                let backoff = model.backoff_secs(retry);
                if retry > model.max_retries || delay + backoff > model.timeout_secs {
                    hep_obs::record_io_giveup();
                    return Err(e);
                }
                delay += backoff;
                hep_obs::record_io_retry();
                if sleep_scale > 0.0 {
                    std::thread::sleep(std::time::Duration::from_secs_f64(backoff * sleep_scale));
                }
            }
        }
    }
}

impl<B: IoBackend> IoBackend for RetryingIo<B> {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn ReadAt>> {
        let handle = with_retries(&self.model, self.sleep_scale, || self.inner.open_read(path))?;
        Ok(Box::new(RetryingHandle {
            inner: HandleInner::Read(handle),
            model: self.model,
            sleep_scale: self.sleep_scale,
        }))
    }

    fn create_scratch(&self, tag: &str) -> io::Result<Box<dyn ReadWriteAt>> {
        let handle = with_retries(&self.model, self.sleep_scale, || {
            self.inner.create_scratch(tag)
        })?;
        Ok(Box::new(RetryingHandle {
            inner: HandleInner::ReadWrite(handle),
            model: self.model,
            sleep_scale: self.sleep_scale,
        }))
    }
}

/// A handle whose exact-read/-write operations are retried whole: each
/// attempt restarts at the original offset, so partially filled buffers
/// or torn writes from a failed attempt are overwritten in place.
struct RetryingHandle {
    inner: HandleInner,
    model: RetryModel,
    sleep_scale: f64,
}

impl RetryingHandle {
    fn read_inner(&self) -> &dyn ReadAt {
        match &self.inner {
            HandleInner::Read(r) => r.as_ref(),
            HandleInner::ReadWrite(rw) => rw.as_ref(),
        }
    }
}

impl ReadAt for RetryingHandle {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        with_retries(&self.model, self.sleep_scale, || {
            self.read_inner().read_at(buf, offset)
        })
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        with_retries(&self.model, self.sleep_scale, || {
            self.read_inner().read_exact_at(buf, offset)
        })
    }
}

impl WriteAt for RetryingHandle {
    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let inner = match &self.inner {
            HandleInner::Read(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "read-only retrying handle",
                ))
            }
            HandleInner::ReadWrite(rw) => rw.as_ref(),
        };
        with_retries(&self.model, self.sleep_scale, || {
            inner.write_at(buf, offset)
        })
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        let inner = match &self.inner {
            HandleInner::Read(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "read-only retrying handle",
                ))
            }
            HandleInner::ReadWrite(rw) => rw.as_ref(),
        };
        with_retries(&self.model, self.sleep_scale, || {
            inner.write_all_at(buf, offset)
        })
    }
}

/// The standard fault-soak stack: retrying adapter over fault injection
/// over the plain filesystem. With `cfg` at a transient rate and
/// `model` allowing a few retries, every operation eventually succeeds
/// and replays are bit-identical to fault-free; with `cfg.fail_p` at
/// 1.0 the budget always exhausts and the readers surface typed errors.
pub fn faulty_retrying_io(cfg: IoFaultConfig, model: RetryModel) -> RetryingIo<FaultyIo<StdIo>> {
    RetryingIo::new(FaultyIo::new(cfg), model)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A retry model allowing 4 retries with negligible modeled backoff.
    fn budget(retries: u32) -> RetryModel {
        RetryModel {
            failure_p: 0.0,
            max_retries: retries,
            backoff_base_secs: 0.001,
            backoff_factor: 2.0,
            backoff_cap_secs: 0.01,
            timeout_secs: 10.0,
        }
    }

    fn scratch_with(io: &dyn IoBackend, data: &[u8]) -> Box<dyn ReadWriteAt> {
        let f = io.create_scratch("io-fault-test").unwrap();
        f.write_all_at(data, 0).unwrap();
        f
    }

    #[test]
    fn no_faults_is_transparent() {
        let io = FaultyIo::new(IoFaultConfig::NONE);
        let f = scratch_with(&io, b"abcdefgh");
        let mut buf = [0u8; 8];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"abcdefgh");
        assert_eq!(io.injected_faults(), 0);
    }

    #[test]
    fn fault_draws_are_deterministic() {
        let cfg = IoFaultConfig::transient(42, 0.5);
        let a: Vec<bool> = (0..256)
            .map(|off| cfg.draw(7, off, 0, SALT_FAIL) < cfg.fail_p)
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|off| cfg.draw(7, off, 0, SALT_FAIL) < cfg.fail_p)
            .collect();
        assert_eq!(a, b);
        let other_seed = IoFaultConfig::transient(43, 0.5);
        let c: Vec<bool> = (0..256)
            .map(|off| other_seed.draw(7, off, 0, SALT_FAIL) < other_seed.fail_p)
            .collect();
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn certain_failure_surfaces_after_budget() {
        let cfg = IoFaultConfig {
            seed: 1,
            fail_p: 1.0,
            short_read_p: 0.0,
            torn_write_p: 0.0,
        };
        let io = faulty_retrying_io(cfg, budget(2));
        let before = hep_obs::io_giveup_count();
        let f = io.create_scratch("giveup").unwrap();
        let err = f.write_all_at(b"data", 0).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(hep_obs::io_giveup_count() > before);
    }

    #[test]
    fn transient_faults_recover_bit_identically() {
        // 30% faults, 8 retries: give-up odds per op are ~1e-4 at
        // these few dozen operations — and draws are deterministic, so
        // the test either always passes or never does.
        let cfg = IoFaultConfig::transient(9, 0.3);
        let io = faulty_retrying_io(cfg, budget(8));
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let before = hep_obs::io_retry_count();
        let f = scratch_with(&io, &data);
        let mut buf = vec![0u8; data.len()];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf, data, "recovered bytes must be identical");
        assert!(
            hep_obs::io_retry_count() > before,
            "a 30% fault rate must force at least one retry"
        );
    }

    #[test]
    fn torn_writes_heal_under_retry() {
        let cfg = IoFaultConfig {
            seed: 5,
            fail_p: 0.4,
            short_read_p: 0.0,
            torn_write_p: 1.0,
        };
        let io = faulty_retrying_io(cfg, budget(10));
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7 % 256) as u8).collect();
        let f = io.create_scratch("torn").unwrap();
        f.write_all_at(&data, 0).unwrap();
        let mut buf = vec![0u8; data.len()];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf, data, "torn prefixes must be overwritten in place");
    }

    #[test]
    fn short_reads_deliver_correct_prefixes() {
        let cfg = IoFaultConfig {
            seed: 3,
            fail_p: 0.0,
            short_read_p: 1.0,
            torn_write_p: 0.0,
        };
        let io = FaultyIo::new(cfg);
        let data = b"0123456789abcdef".to_vec();
        let f = scratch_with(&io, &data);
        // Every read is short, but the exact-read loop heals them.
        let mut buf = vec![0u8; data.len()];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf, data);
        assert!(io.injected_faults() > 0);
    }

    #[test]
    fn open_read_passes_bytes_through() {
        let dir = std::env::temp_dir().join("filecules-io-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("ro-{}.bin", std::process::id()));
        std::fs::write(&path, b"x").unwrap();
        let io = FaultyIo::new(IoFaultConfig::NONE);
        let h = io.open_read(&path).unwrap();
        let mut b = [0u8; 1];
        h.read_exact_at(&mut b, 0).unwrap();
        assert_eq!(&b, b"x");
        std::fs::remove_file(&path).ok();
    }
}
