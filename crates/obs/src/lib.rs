//! # hep-obs
//!
//! Lightweight observability for the filecules workspace: counters,
//! power-of-two histograms and span timers behind an explicit handle with a
//! **zero-overhead disabled mode**.
//!
//! ## Design
//!
//! There are deliberately **no globals** — no `static` registry, no
//! thread-locals, no macro magic. A [`Metrics`] handle is either *disabled*
//! (the default: a `None` inside, every call an inlineable early return) or
//! *enabled* (an `Arc<MetricsRecorder>` accumulating into mutex-guarded
//! `BTreeMap`s). Callers thread the handle explicitly into whatever they want
//! instrumented. This keeps the simulators' determinism guarantees untouched:
//! metrics observe the computation, they never feed back into it, and with the
//! handle disabled the instrumented code takes the exact same branches as
//! uninstrumented code minus one predictable `Option` check per *boundary*
//! (instrumentation sits at run/phase boundaries, never inside per-event hot
//! loops).
//!
//! [`Snapshot`] is the export format: plain serde data (`BTreeMap`s, so JSON
//! and CSV output are deterministically ordered) that round-trips through
//! `serde_json` and renders to a simple CSV for spreadsheets.
//!
//! ```
//! use hep_obs::Metrics;
//!
//! let metrics = Metrics::enabled();
//! metrics.add("requests", 3);
//! metrics.observe("bytes", 4096);
//! {
//!     let _span = metrics.span("phase.work");
//!     // ... timed work ...
//! }
//! let snap = metrics.snapshot().unwrap();
//! assert_eq!(snap.counter("requests"), 3);
//! assert_eq!(snap.timers["phase.work"].count, 1);
//!
//! // Disabled handles cost nothing and produce nothing.
//! let off = Metrics::disabled();
//! off.add("requests", 1);
//! assert!(off.snapshot().is_none());
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sink for metric events.
///
/// Every method has a no-op default body, so `impl Recorder for MySink {}` is
/// a valid (if silent) recorder. [`NoopRecorder`] is exactly that; the real
/// implementation is [`MetricsRecorder`].
pub trait Recorder: Send + Sync {
    /// Add `delta` to the counter `name`.
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Record one observation of `value` into the histogram `name`.
    fn observe(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Record one elapsed duration (in seconds) into the timer `name`.
    fn record_secs(&self, name: &str, secs: f64) {
        let _ = (name, secs);
    }
}

/// A recorder that drops everything (all trait defaults).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Accumulated state of one timer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct TimerStat {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all recorded durations, in seconds.
    pub total_secs: f64,
    /// Shortest recorded duration, in seconds.
    pub min_secs: f64,
    /// Longest recorded duration, in seconds.
    pub max_secs: f64,
}

impl Default for TimerStat {
    fn default() -> Self {
        TimerStat {
            count: 0,
            total_secs: 0.0,
            min_secs: f64::INFINITY,
            max_secs: 0.0,
        }
    }
}

impl TimerStat {
    fn record(&mut self, secs: f64) {
        self.count += 1;
        self.total_secs += secs;
        self.min_secs = self.min_secs.min(secs);
        self.max_secs = self.max_secs.max(secs);
    }
}

/// Accumulated state of one power-of-two histogram.
///
/// Bucket `i` counts observations `v` with `2^i <= v < 2^(i+1)`; bucket 0
/// also absorbs 0 and 1. Trailing empty buckets are simply never allocated.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct HistogramStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Power-of-two bucket counts (index = `floor(log2(max(v, 1)))`).
    pub buckets: Vec<u64>,
}

fn bucket_index(v: u64) -> usize {
    if v < 2 {
        0
    } else {
        (63 - v.leading_zeros()) as usize
    }
}

impl HistogramStat {
    fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time export of everything a [`MetricsRecorder`] has accumulated.
///
/// All maps are `BTreeMap`s so serialization order is deterministic; the
/// struct round-trips through `serde_json` without loss.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Span timers by name.
    #[serde(default)]
    pub timers: BTreeMap<String, TimerStat>,
    /// Power-of-two histograms by name.
    #[serde(default)]
    pub histograms: BTreeMap<String, HistogramStat>,
}

impl Snapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Pretty-printed JSON (deterministic key order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("Snapshot serialization cannot fail")
    }

    /// Parse a snapshot back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Flat CSV rendering: `kind,name,count,total,min,max`.
    ///
    /// Counters use the `total` column; timers report seconds; histograms
    /// report observed values (bucket detail is JSON-only).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,count,total,min,max\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},,{v},,");
        }
        for (name, t) in &self.timers {
            let _ = writeln!(
                out,
                "timer,{name},{},{:.6},{:.6},{:.6}",
                t.count, t.total_secs, t.min_secs, t.max_secs
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{name},{},{},{},{}",
                h.count, h.sum, h.min, h.max
            );
        }
        out
    }

    /// Write to `path`, choosing the format by extension: `.csv` gets
    /// [`Snapshot::to_csv`], anything else gets JSON.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let rendered = match path.extension().and_then(|e| e.to_str()) {
            Some("csv") => self.to_csv(),
            _ => self.to_json(),
        };
        std::fs::write(path, rendered)
    }

    /// One-line human summary of all timers, ordered by name:
    /// `plan 0.412s, materialize 1.305s`. Empty string when no timers exist.
    pub fn timing_summary(&self) -> String {
        let mut parts = Vec::with_capacity(self.timers.len());
        for (name, t) in &self.timers {
            parts.push(format!("{name} {:.3}s", t.total_secs));
        }
        parts.join(", ")
    }
}

/// The real recorder: mutex-guarded accumulation into a [`Snapshot`].
///
/// One coarse mutex is plenty — instrumentation happens at run and phase
/// boundaries (a handful of lock acquisitions per simulation), never inside
/// per-event loops, so contention is structurally negligible.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    inner: Mutex<Snapshot>,
}

impl MetricsRecorder {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Snapshot> {
        // A panic while holding this lock cannot leave the snapshot in an
        // invalid state (all updates are single-field arithmetic), so poison
        // is safe to ignore.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copy out everything accumulated so far.
    pub fn snapshot(&self) -> Snapshot {
        self.lock().clone()
    }
}

impl Recorder for MetricsRecorder {
    fn add(&self, name: &str, delta: u64) {
        let mut s = self.lock();
        match s.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn observe(&self, name: &str, value: u64) {
        let mut s = self.lock();
        s.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    fn record_secs(&self, name: &str, secs: f64) {
        let mut s = self.lock();
        s.timers.entry(name.to_owned()).or_default().record(secs);
    }
}

/// Cheap-to-clone handle that is either disabled (`None`, the default) or
/// backed by a shared [`MetricsRecorder`].
///
/// Thread this explicitly into whatever should be observable; it is `Send +
/// Sync`, so one handle can be shared across a rayon fan-out and all workers
/// accumulate into the same recorder.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    rec: Option<Arc<MetricsRecorder>>,
}

impl Metrics {
    /// The no-op handle: every call is an early return, `snapshot()` is
    /// `None`. Identical to `Metrics::default()`.
    pub fn disabled() -> Self {
        Metrics { rec: None }
    }

    /// A handle backed by a fresh recorder.
    pub fn enabled() -> Self {
        Metrics {
            rec: Some(Arc::new(MetricsRecorder::new())),
        }
    }

    /// A handle sharing an existing recorder.
    pub fn with_recorder(rec: Arc<MetricsRecorder>) -> Self {
        Metrics { rec: Some(rec) }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(r) = &self.rec {
            r.add(name, delta);
        }
    }

    /// Add 1 to the counter `name`.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Record one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.rec {
            r.observe(name, value);
        }
    }

    /// Record an elapsed duration (seconds) into the timer `name`.
    pub fn record_secs(&self, name: &str, secs: f64) {
        if let Some(r) = &self.rec {
            r.record_secs(name, secs);
        }
    }

    /// Start a timed span; the elapsed time is recorded into the timer
    /// `name` when the returned guard drops. On a disabled handle this
    /// never even reads the clock.
    pub fn span(&self, name: &str) -> Span {
        Span {
            active: self
                .rec
                .as_ref()
                .map(|r| (Arc::clone(r), name.to_owned(), Instant::now())),
        }
    }

    /// Snapshot of everything recorded so far; `None` when disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.rec.as_ref().map(|r| r.snapshot())
    }
}

/// RAII guard from [`Metrics::span`]: records the elapsed wall time into its
/// timer on drop (or explicit [`Span::finish`]).
#[must_use = "a span records its timing when dropped; binding it to `_` drops immediately"]
pub struct Span {
    active: Option<(Arc<MetricsRecorder>, String, Instant)>,
}

impl Span {
    /// Consume the span, recording now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((rec, name, start)) = self.active.take() {
            rec.record_secs(&name, start.elapsed().as_secs_f64());
        }
    }
}

/// Parse a `VmHWM`/`VmRSS`-style line of `/proc/self/status` into bytes.
#[cfg(target_os = "linux")]
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    // Format: "VmHWM:     123456 kB".
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// Peak resident set size (`VmHWM`) of this process, in bytes.
///
/// Reads `/proc/self/status`; returns `None` on non-Linux platforms or if
/// the file cannot be read or parsed. The kernel reports the high-water
/// mark since process start (or the last reset), so this is a
/// whole-process peak, not a per-phase delta.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmHWM:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Current resident set size (`VmRSS`) of this process, in bytes.
///
/// Reads `/proc/self/status`; returns `None` on non-Linux platforms or if
/// the file cannot be read or parsed.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmRSS:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Process-wide count of full FCTB2 access-region decode passes.
///
/// A deliberate exception to the no-globals rule (like
/// `hep_trace::materialization_count`): the interesting invariant — "the
/// streamed Belady path decodes the trace file exactly once" — spans
/// crates and policy constructors that do not thread a [`Metrics`]
/// handle, so the decoders publish into this process-wide counter
/// instead. It observes the computation and never feeds back into it.
static DECODE_PASSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Record one full decode pass over an FCTB2 access region.
///
/// Called by the streaming readers in `hep-trace` each time they scan
/// and decode the whole on-disk access region (header-only opens and
/// spill-file re-reads do not count).
pub fn record_decode_pass() {
    DECODE_PASSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Number of full FCTB2 decode passes recorded so far in this process.
///
/// Tests assert deltas of this counter around a streamed run (e.g. the
/// single-decode Belady contract: exactly one pass from spill recording
/// through replay).
pub fn decode_pass_count() -> u64 {
    DECODE_PASSES.load(std::sync::atomic::Ordering::Relaxed)
}

/// Process-wide count of retried I/O operations (same no-globals
/// exception as [`record_decode_pass`]): the fault-tolerant I/O adapter
/// in `hep-faults` retries deep inside streaming readers that do not
/// thread a [`Metrics`] handle.
static IO_RETRIES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide count of I/O operations abandoned after exhausting
/// their retry/backoff budget.
static IO_GIVEUPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Record one retried I/O operation (an attempt after the first).
pub fn record_io_retry() {
    IO_RETRIES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Number of I/O retries recorded so far in this process.
pub fn io_retry_count() -> u64 {
    IO_RETRIES.load(std::sync::atomic::Ordering::Relaxed)
}

/// Record one I/O operation abandoned after its retry budget ran out.
pub fn record_io_giveup() {
    IO_GIVEUPS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Number of abandoned I/O operations recorded so far in this process.
pub fn io_giveup_count() -> u64 {
    IO_GIVEUPS.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.add("a", 1);
        m.observe("b", 2);
        m.record_secs("c", 0.5);
        m.span("d").finish();
        assert!(m.snapshot().is_none());
        // Default is disabled too.
        assert!(!Metrics::default().is_enabled());
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::enabled();
        m.add("x", 2);
        m.incr("x");
        m.add("y", 0);
        let s = m.snapshot().unwrap();
        assert_eq!(s.counter("x"), 3);
        assert_eq!(s.counter("y"), 0);
        assert_eq!(s.counter("absent"), 0);
        assert!(s.counters.contains_key("y"));
    }

    #[test]
    fn clones_share_the_recorder() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m.add("n", 1);
        m2.add("n", 1);
        assert_eq!(m.snapshot().unwrap().counter("n"), 2);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);

        let m = Metrics::enabled();
        for v in [0, 1, 5, 1024] {
            m.observe("h", v);
        }
        let s = m.snapshot().unwrap();
        let h = &s.histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets.len(), 11);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
        assert!((h.mean() - 257.5).abs() < 1e-9);
    }

    #[test]
    fn spans_record_timers() {
        let m = Metrics::enabled();
        {
            let _span = m.span("t");
        }
        m.span("t").finish();
        let s = m.snapshot().unwrap();
        let t = &s.timers["t"];
        assert_eq!(t.count, 2);
        assert!(t.total_secs >= 0.0);
        assert!(t.min_secs <= t.max_secs);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let m = Metrics::enabled();
        m.add("c", 7);
        m.observe("h", 33);
        m.record_secs("t", 1.25);
        let snap = m.snapshot().unwrap();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_csv_shape() {
        let m = Metrics::enabled();
        m.add("c", 7);
        m.record_secs("t", 0.5);
        m.observe("h", 9);
        let csv = m.snapshot().unwrap().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,count,total,min,max");
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().any(|l| l.starts_with("counter,c,,7")));
        assert!(lines.iter().any(|l| l.starts_with("timer,t,1,")));
        assert!(lines.iter().any(|l| l.starts_with("histogram,h,1,9,9,9")));
    }

    #[test]
    fn timing_summary_is_ordered_and_compact() {
        let m = Metrics::enabled();
        m.record_secs("b.second", 2.0);
        m.record_secs("a.first", 1.0);
        let line = m.snapshot().unwrap().timing_summary();
        assert_eq!(line, "a.first 1.000s, b.second 2.000s");
        assert_eq!(Snapshot::default().timing_summary(), "");
    }

    #[test]
    fn recorder_trait_defaults_are_noops() {
        let r = NoopRecorder;
        r.add("a", 1);
        r.observe("b", 2);
        r.record_secs("c", 3.0);
    }

    #[test]
    fn write_dispatches_on_extension() {
        let dir = std::env::temp_dir().join("hep-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let m = Metrics::enabled();
        m.add("k", 5);
        let snap = m.snapshot().unwrap();

        let json_path = dir.join("snap.json");
        snap.write(&json_path).unwrap();
        let parsed = Snapshot::from_json(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(parsed, snap);

        let csv_path = dir.join("snap.csv");
        snap.write(&csv_path).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("kind,name,count,total,min,max"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_helpers_report_plausible_values() {
        let peak = peak_rss_bytes().expect("VmHWM readable on Linux");
        let now = current_rss_bytes().expect("VmRSS readable on Linux");
        assert!(peak > 0 && now > 0);
        assert!(peak >= now, "high-water mark below current RSS");
    }
}
