//! # filecules
//!
//! A comprehensive Rust reproduction of **"Filecules in High-Energy
//! Physics: Characteristics and Impact on Resource Management"**
//! (Iamnitchi, Doraimani, Garzoglio — HPDC 2006).
//!
//! The paper analyzes 27 months of DZero/SAM data-handling traces and
//! proposes the *filecule* — a maximal group of files always requested
//! together — as the right granularity for Grid data management, showing
//! that LRU caching at filecule granularity cuts miss rates by up to 4–5x.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`stats`] (`hep-stats`) — numerics substrate;
//! * [`trace`] (`hep-trace`) — trace model + calibrated synthetic DZero
//!   workload generator (substituting the proprietary traces);
//! * [`core`] (`filecule-core`) — filecule identification & analysis
//!   (the paper's contribution);
//! * [`cachesim`] — file-LRU vs filecule-LRU and baseline policies
//!   (Figure 10);
//! * [`transfer`] — BitTorrent feasibility analysis (Section 5,
//!   Figures 11–12);
//! * [`replication`] — filecule-aware proactive replication (Section 6);
//! * [`hierarchy`] (`hep-hierarchy`) — multi-tier (edge → regional →
//!   origin) cache-hierarchy simulator: per-tier [`cachesim::PolicySpec`]
//!   caches, miss escalation, fault-aware inter-tier transfer costing and
//!   degradation sweeps;
//! * [`faults`] (`hep-faults`) — seeded fault injection: site outages,
//!   transfer failures and degraded links, replayed through the cache,
//!   replication and transfer simulators in degraded mode;
//! * [`obs`] (`hep-obs`) — opt-in observability: counters, histograms and
//!   span timers behind an explicit [`obs::Metrics`] handle (no globals;
//!   zero overhead when disabled), exportable as JSON/CSV snapshots;
//! * [`runctx`] (`hep-runctx`) — the [`runctx::RunCtx`] run context
//!   (metrics + fault plan + shards/threads knobs) taken by every
//!   simulator entry point, replacing the historical `*_metrics` /
//!   `*_faulty` sibling functions (which survive as deprecated shims).
//!
//! ## Quickstart
//!
//! ```
//! use filecules::prelude::*;
//!
//! // A small calibrated DZero-like trace (deterministic in the seed).
//! let trace = TraceSynthesizer::new(SynthConfig::small(42)).generate();
//!
//! // Identify filecules: equivalence classes of identical job-access sets.
//! let set = identify(&trace);
//! assert!(set.n_filecules() > 0);
//!
//! // Materialize the replay stream once, then drive any number of
//! // policies over the shared log with the replay engine.
//! let log = ReplayLog::build(&trace);
//! let sim = Simulator::new();
//! let cap = TB / 100;
//! // The engine is fallible for disk-backed sources; the in-memory log
//! // never fails, so unwrapping here is safe.
//! let file = sim.run(&log, &mut FileLru::new(&trace, cap)).unwrap();
//! let filecule = sim
//!     .run(&log, &mut FileculeLru::new(&trace, &set, cap))
//!     .unwrap();
//! assert!(filecule.miss_rate() <= file.miss_rate());
//!
//! // One-shot convenience wrapper (re-materializes per call).
//! let again = simulate(&trace, &mut FileLru::new(&trace, cap));
//! assert_eq!(again.misses, file.misses);
//! ```

#![warn(missing_docs)]

pub use cachesim;
pub use filecule_core as core;
pub use hep_faults as faults;
pub use hep_hierarchy as hierarchy;
pub use hep_obs as obs;
pub use hep_runctx as runctx;
pub use hep_stats as stats;
pub use hep_trace as trace;
pub use replication;
pub use transfer;

/// The most common imports in one place.
pub mod prelude {
    pub use cachesim::{
        build_policy, build_policy_from_log, simulate, split_capacity, sweep_fig10, FileLru,
        FileculeLru, ManifestStore, Policy, PolicySpec, ShardPlan, SimError, SimOptions, SimReport,
        Simulator,
    };
    pub use filecule_core::{
        identify, identify_from_source, FileculeId, FileculeSet, IncrementalFilecules,
    };
    pub use hep_faults::{FaultConfig, FaultPlan};
    pub use hep_hierarchy::{
        parse_tiers, severity_sweep, simulate_hierarchy, simulate_hierarchy_stream,
        HierarchyConfig, HierarchyReport, TierSpec,
    };
    pub use hep_obs::{Metrics, Snapshot};
    pub use hep_runctx::{configure_rayon_threads, RunCtx};
    pub use hep_trace::{
        DataTier, EventSource, FileId, JobId, JobSource, RandomAccessLog, ReplayLog, SpillLog,
        StreamError, StreamedLog, SynthConfig, Trace, TraceBuilder, TraceSynthesizer,
        DEFAULT_CHUNK_EVENTS, GB, MB, TB,
    };
    pub use transfer::{assess, hottest_filecule, SwarmModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_pipeline_smoke() {
        let trace = TraceSynthesizer::new(SynthConfig::small(1)).generate();
        let set = identify(&trace);
        assert!(set.verify(&trace).is_empty());
        let g = hottest_filecule(&trace, &set).unwrap();
        assert!(set.popularity(g) >= 1);
        let plan = FaultPlan::for_trace(&FaultConfig::default(), &trace, 1);
        assert!(plan.is_fault_free());
    }
}
