//! Section 8 (future work): how dynamic are filecules?
//!
//! Runs the online identifier over the trace and prints the convergence
//! curve (filecule count after every batch of jobs), then identifies
//! filecules independently in time windows and measures how much a file's
//! group changes between windows.
//!
//! Run with:
//! ```text
//! cargo run --release --example filecule_dynamics
//! ```

use filecules::core::dynamics::{window_stability, windows};
use filecules::core::identify_hashed;
use filecules::prelude::*;

fn main() {
    let mut cfg = SynthConfig::paper(0xD0D0_2006, 100.0);
    cfg.user_scale = 2.0;
    let trace = TraceSynthesizer::new(cfg).generate();
    println!(
        "trace: {} jobs, {} accesses, {} files",
        trace.n_jobs(),
        trace.n_accesses(),
        trace.n_files()
    );

    // Online identification: watch the partition grow.
    let mut inc = IncrementalFilecules::new(trace.n_files());
    inc.observe_trace(&trace);
    let curve = inc.evolution();
    println!("\nonline identification convergence (filecules after k jobs):");
    let n = curve.len();
    for pct in [1usize, 5, 10, 25, 50, 75, 100] {
        let k = (n * pct / 100).max(1) - 1;
        println!(
            "  after {:>5} jobs ({:>3}%): {:>6} filecules",
            k + 1,
            pct,
            curve[k]
        );
    }

    // The three identifiers agree.
    let exact = identify(&trace);
    let online = inc.snapshot(&trace);
    let hashed = identify_hashed(&trace);
    assert_eq!(exact.n_filecules(), online.n_filecules());
    assert_eq!(exact.n_filecules(), hashed.n_filecules());
    println!(
        "\nexact / online / hashed identifiers agree: {} filecules covering {} files",
        exact.n_filecules(),
        exact.n_assigned_files()
    );

    // Windowed stability (the paper's "do files stay in the same
    // filecules?" question).
    println!("\nstability across independent time windows:");
    for n_windows in [2usize, 4, 8] {
        let ws = windows(&trace, n_windows);
        let sizes: Vec<String> = ws.iter().map(|w| w.n_filecules().to_string()).collect();
        let reports = window_stability(&trace, n_windows);
        let mean_j: f64 =
            reports.iter().map(|r| r.mean_jaccard).sum::<f64>() / reports.len().max(1) as f64;
        let mean_id: f64 =
            reports.iter().map(|r| r.identical_fraction).sum::<f64>() / reports.len().max(1) as f64;
        println!(
            "  {n_windows} windows (sizes {}): mean Jaccard {:.3}, identical groups {:.1}%",
            sizes.join("/"),
            mean_j,
            mean_id * 100.0
        );
    }
    println!(
        "\n  interpretation: a file re-used in a later window keeps most of its\n  \
         companions (Jaccard ~0.6) — filecules drift as new cut points appear\n  \
         but do not dissolve, unlike sequence-based groups (paper Section 7)."
    );
}
