//! Figure 10 reproduction plus the full policy-comparison ablation.
//!
//! Sweeps the paper's seven cache sizes (1–100 TB, scaled) comparing
//! file-LRU vs filecule-LRU, then runs every baseline policy at one size.
//!
//! Run with:
//! ```text
//! cargo run --release --example cache_comparison
//! ```

use cachesim::sweep::compare_policies;
use filecules::prelude::*;

const SCALE: f64 = 100.0;

fn main() {
    let mut cfg = SynthConfig::paper(0xD0D0_2006, SCALE);
    cfg.user_scale = 2.0;
    println!("generating trace (scale 1/{SCALE}) ...");
    let trace = TraceSynthesizer::new(cfg).generate();
    let set = identify(&trace);
    println!(
        "  {} accesses over {} files in {} filecules\n",
        trace.n_accesses(),
        trace.n_files(),
        set.n_filecules()
    );

    println!("Figure 10 — LRU miss rate, file vs filecule granularity");
    println!("  paper TB | cache (scaled) | file-LRU | filecule-LRU | factor");
    println!("  ---------+----------------+----------+--------------+-------");
    for row in sweep_fig10(&trace, &set, SCALE) {
        println!(
            "  {:>8} | {:>11.3} TB | {:>8.4} | {:>12.4} | {:>5.1}x",
            row.paper_tb,
            row.capacity as f64 / TB as f64,
            row.file_lru_miss,
            row.filecule_lru_miss,
            row.improvement_factor()
        );
    }
    println!(
        "\n  paper shape: factor grows with cache size to 4-5x; smallest\n  \
         cache shows the smallest gap (~9.5% in the paper) because large\n  \
         filecules cannot be retained there.\n"
    );

    // Ablation: every policy at the paper's 10 TB point.
    let cap = (10.0 * TB as f64 / SCALE) as u64;
    println!(
        "policy comparison at {:.2} TB (paper-scale 10 TB):",
        cap as f64 / TB as f64
    );
    println!("  policy                  | miss rate | warm miss | byte traffic");
    println!("  ------------------------+-----------+-----------+-------------");
    let mut reports = compare_policies(&trace, &set, cap);
    reports.sort_by(|a, b| a.miss_rate().partial_cmp(&b.miss_rate()).unwrap());
    for r in &reports {
        println!(
            "  {:<23} | {:>9.4} | {:>9.4} | {:>10.3}",
            r.policy,
            r.miss_rate(),
            r.warm_miss_rate(),
            r.byte_traffic_ratio()
        );
    }
    println!(
        "\n  byte traffic = backing-store bytes per requested byte; >1 means\n  \
         speculative prefetch overhead, <1 means reuse captured."
    );
}
