//! Quickstart: generate a calibrated DZero-like trace, identify filecules,
//! and reproduce the paper's headline cache result at one cache size.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use filecules::core::metrics;
use filecules::prelude::*;

fn main() {
    // A scaled-down trace (1/100 of the paper's volume) — deterministic.
    let mut cfg = SynthConfig::paper(0xD0D0_2006, 100.0);
    cfg.user_scale = 2.0;
    println!(
        "generating synthetic DZero workload (seed {:#x}) ...",
        cfg.seed
    );
    let trace = TraceSynthesizer::new(cfg).generate();
    println!(
        "  {} jobs, {} file accesses, {} distinct files, {} users, {} sites",
        trace.n_jobs(),
        trace.n_accesses(),
        trace.n_files(),
        trace.n_users(),
        trace.n_sites()
    );

    // Identify filecules: files grouped by identical job-access signatures.
    let set = identify(&trace);
    let stats = metrics::partition_stats(&trace, &set);
    println!("\nfilecule identification:");
    println!("  filecules:             {}", stats.n_filecules);
    println!("  files covered:         {}", stats.n_files);
    println!("  mean files/filecule:   {:.1}", stats.mean_files);
    println!(
        "  largest filecule:      {:.1} GB",
        stats.max_bytes as f64 / GB as f64
    );
    println!(
        "  single-file fraction:  {:.1}%",
        stats.single_file_fraction * 100.0
    );
    println!(
        "  single-user fraction:  {:.1}%  (paper: ~10%)",
        stats.single_user_fraction * 100.0
    );
    println!("  max users/filecule:    {}  (paper: 44)", stats.max_users);
    println!(
        "  popularity gini:       {:.3}  (flattened non-Zipf interest)",
        stats.popularity_gini
    );

    let (pearson, spearman) = metrics::size_popularity_correlation(&set);
    println!(
        "  popularity-size correlation: pearson {pearson:+.3}, spearman {spearman:+.3} \
         (paper: none)"
    );

    // The headline: file-LRU vs filecule-LRU at a mid-size cache, both
    // replayed over one shared materialization of the request stream.
    let cap = 10 * TB / 100; // paper's 10 TB point, divided by the scale
    let log = ReplayLog::build(&trace);
    let sim = Simulator::new();
    let file = sim
        .run(&log, &mut FileLru::new(&trace, cap))
        .expect("in-memory replay is infallible");
    let filecule = sim
        .run(&log, &mut FileculeLru::new(&trace, &set, cap))
        .expect("in-memory replay is infallible");
    println!(
        "\ncache comparison at {:.2} TB (paper-scale 10 TB):",
        cap as f64 / TB as f64
    );
    println!(
        "  file-LRU     miss rate {:.3}  ({} misses / {} requests)",
        file.miss_rate(),
        file.misses,
        file.requests
    );
    println!(
        "  filecule-LRU miss rate {:.3}  ({} misses / {} requests)",
        filecule.miss_rate(),
        filecule.misses,
        filecule.requests
    );
    println!(
        "  improvement: {:.1}x lower miss rate (paper: 4-5x at large caches)",
        file.miss_rate() / filecule.miss_rate().max(1e-12)
    );
}
