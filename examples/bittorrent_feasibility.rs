//! Section 5 reproduction: would BitTorrent help DZero?
//!
//! Picks the hottest filecule (most users — the paper's case study is a
//! 2.2 GB filecule with 42 users from 6 sites and 634 jobs), draws its
//! per-site and per-user access intervals (Figures 11–12) as ASCII Gantt
//! lines, then runs the swarm model over the measured concurrency.
//!
//! Run with:
//! ```text
//! cargo run --release --example bittorrent_feasibility
//! ```

use filecules::prelude::*;
use transfer::intervals::{intervals_by_site, intervals_by_user, peak_overlap, AccessInterval};

const SCALE: f64 = 100.0;
const DAY: u64 = 86_400;

fn gantt(intervals: &[AccessInterval], horizon: u64, label: &str) {
    println!("  {label:>8} | timeline ({} days)", horizon / DAY);
    const W: usize = 64;
    for iv in intervals {
        let a = (iv.first as f64 / horizon as f64 * W as f64) as usize;
        let b = ((iv.last as f64 / horizon as f64 * W as f64) as usize).clamp(a, W - 1);
        let mut line = vec![' '; W];
        line.iter_mut().take(b + 1).skip(a).for_each(|c| *c = '=');
        println!(
            "  {:>8} | {}| {} jobs",
            iv.entity,
            line.iter().collect::<String>(),
            iv.jobs
        );
    }
}

fn main() {
    let mut cfg = SynthConfig::paper(0xD0D0_2006, SCALE);
    cfg.user_scale = 2.0;
    let trace = TraceSynthesizer::new(cfg).generate();
    let set = identify(&trace);
    let horizon = trace.horizon().max(1);

    let g = hottest_filecule(&trace, &set).expect("non-empty trace");
    let users = filecules::core::metrics::users_per_filecule(&trace, &set);
    println!(
        "case-study filecule #{}: {} files, {:.2} GB, {} requests, {} users",
        g.0,
        set.len(g),
        set.size_bytes(g) as f64 / GB as f64,
        set.popularity(g),
        users[g.index()]
    );
    println!("(paper's case study: 2 files, 2.2 GB, 634 jobs, 42 users, 6 sites)\n");

    let by_site = intervals_by_site(&trace, &set, g);
    println!("Figure 11 — access interval per site:");
    gantt(&by_site, horizon, "site");
    println!(
        "  peak simultaneous sites (optimistic): {}\n",
        peak_overlap(&by_site)
    );

    let by_user = intervals_by_user(&trace, &set, g);
    println!("Figure 12 — access interval per user:");
    gantt(&by_user, horizon, "user");
    println!(
        "  peak simultaneous users (optimistic): {}\n",
        peak_overlap(&by_user)
    );

    // What swarming would deliver at various swarm sizes, for this filecule.
    let model = SwarmModel::default();
    println!(
        "fluid swarm model for this filecule ({:.2} GB):",
        set.size_bytes(g) as f64 / GB as f64
    );
    println!("  leechers | t(client-server) | t(bittorrent) | speedup");
    for n in [1u32, 2, 5, 10, 20, 42] {
        let o = model.predict(set.size_bytes(g), n);
        println!(
            "  {:>8} | {:>13.1} s | {:>11.1} s | {:>6.2}x",
            n,
            o.time_cs,
            o.time_bt,
            o.speedup()
        );
    }

    // Chunk-level swarm replay of the same filecule at its real arrival
    // times vs a hypothetical flash crowd.
    let arrivals: Vec<u64> = transfer::intervals::filecule_requests(&trace, &set, g)
        .iter()
        .map(|&(t, _, _)| t)
        .collect();
    let cfg = transfer::SwarmSimConfig::default();
    let real = transfer::simulate_swarm(set.size_bytes(g), &arrivals, &cfg);
    let flash = transfer::simulate_swarm(set.size_bytes(g), &vec![0u64; arrivals.len()], &cfg);
    println!(
        "\nchunk-level swarm replay ({} requesters):",
        arrivals.len()
    );
    println!(
        "  real arrival times:  p2p fraction {:>5.1}%, mean download {:>7.0} s",
        real.p2p_fraction() * 100.0,
        real.mean_duration()
    );
    println!(
        "  same-instant crowd:  p2p fraction {:>5.1}%, mean download {:>7.0} s",
        flash.p2p_fraction() * 100.0,
        flash.mean_duration()
    );
    println!("  (the mechanism works — the workload simply never exercises it)");

    // The trace-wide verdict with a 1-day retention window.
    let (report, _) = assess(&trace, &set, &model, DAY, 1.5);
    println!("\ntrace-wide verdict (1-day retention window):");
    println!(
        "  filecules analyzed:                 {}",
        report.n_filecules
    );
    println!(
        "  with any concurrency (peak >= 2):   {} ({:.1}%)",
        report.with_any_concurrency,
        report.with_any_concurrency as f64 / report.n_filecules.max(1) as f64 * 100.0
    );
    println!(
        "  worthwhile for BitTorrent (>{:.1}x): {}",
        report.speedup_threshold, report.worthwhile
    );
    println!(
        "  max peak concurrency (windowed):    {}",
        report.max_peak_windowed
    );
    println!(
        "  max peak concurrency (optimistic):  {}",
        report.max_peak_interval
    );
    println!(
        "\n  => BitTorrent {} justified by this workload (paper: not justified)",
        if report.bittorrent_not_justified {
            "is NOT"
        } else {
            "IS"
        }
    );
}
