//! Section 6 reproduction: filecule identification from partial (per-site)
//! knowledge, and its replication cost.
//!
//! The paper predicts that filecules identified from local job logs "can
//! only be larger than real filecules", that busier sites identify more
//! accurately, and that replication driven by the coarser groups costs more
//! storage and transfer. This example measures all three.
//!
//! Run with:
//! ```text
//! cargo run --release --example site_knowledge
//! ```

use filecules::core::identify::partial::{coarsening_reports, identify_per_site};
use filecules::prelude::*;
use replication::{
    evaluate, filecule_popularity_placement, local_filecule_placement, training_jobs,
};

const SCALE: f64 = 100.0;

fn main() {
    let mut cfg = SynthConfig::paper(0xD0D0_2006, SCALE);
    cfg.user_scale = 2.0;
    let trace = TraceSynthesizer::new(cfg).generate();
    let global = identify(&trace);
    println!(
        "global knowledge: {} filecules over {} accessed files\n",
        global.n_filecules(),
        global.n_assigned_files()
    );

    let per_site = identify_per_site(&trace);
    let mut reports = coarsening_reports(&trace, &global, &per_site);
    reports.sort_by_key(|r| std::cmp::Reverse(r.n_jobs));

    println!("per-site identification accuracy (top 12 sites by jobs):");
    println!("    site |   jobs | local fc | global fc | mean local | exact  | union");
    println!("  -------+--------+----------+-----------+------------+--------+------");
    for r in reports.iter().take(12) {
        println!(
            "  {:>6} | {:>6} | {:>8} | {:>9} | {:>10.1} | {:>5.1}% | {}",
            r.site,
            r.n_jobs,
            r.local_filecules,
            r.global_filecules_covered,
            r.mean_local_size,
            r.exact_fraction * 100.0,
            if r.is_union_of_global {
                "ok"
            } else {
                "VIOLATED"
            }
        );
    }
    println!(
        "\n  'union' confirms the paper's guarantee: local filecules are\n  \
         unions of global ones. 'exact' is the fraction matching a global\n  \
         filecule exactly — it grows with the site's job count.\n"
    );

    // Replication cost under inaccurate identification (Section 6).
    let split = trace.horizon() / 2;
    let training = training_jobs(&trace, split);
    let budget = (20.0 * TB as f64 / SCALE) as u64;
    let global_p = filecule_popularity_placement(&trace, &global, &training, budget);
    let global_r = evaluate(&trace, &global_p, split, "filecule-global");
    let (local_p, _) = local_filecule_placement(&trace, &training, budget);
    let local_r = evaluate(&trace, &local_p, split, "filecule-local");

    println!("replication cost, global vs local filecule knowledge");
    println!("  (train on first half of the trace, evaluate on the second;");
    println!(
        "   per-site replica budget {:.2} TB):",
        budget as f64 / TB as f64
    );
    println!("  policy          | storage used | local hits | remote bytes");
    println!("  ----------------+--------------+------------+-------------");
    for r in [&global_r, &local_r] {
        println!(
            "  {:<15} | {:>9.2} TB | {:>9.1}% | {:>8.2} TB",
            r.policy,
            r.storage_used as f64 / TB as f64,
            r.local_hit_rate() * 100.0,
            r.remote_bytes as f64 / TB as f64
        );
    }
    println!(
        "\n  coarser (local-knowledge) groups replicate more bytes per useful\n  \
         file — the higher storage/transfer cost the paper predicts."
    );
}
