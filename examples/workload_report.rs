//! Full workload characterization: Tables 1–2 and the distributions behind
//! Figures 1–9, computed from a synthetic trace and printed next to the
//! paper's published values.
//!
//! Run with:
//! ```text
//! cargo run --release --example workload_report
//! ```

use filecules::core::metrics;
use filecules::prelude::*;
use hep_trace::characterize;
use hep_trace::synth::calibration;

const SCALE: f64 = 100.0;

fn percentiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p) as usize];
    (q(0.5), q(0.9), q(0.99))
}

fn main() {
    let mut cfg = SynthConfig::paper(0xD0D0_2006, SCALE);
    cfg.user_scale = 2.0;
    let trace = TraceSynthesizer::new(cfg).generate();
    let set = identify(&trace);

    // ---- Table 1 ----
    println!("Table 1 — characteristics per data tier (scale 1/{SCALE}):");
    println!("  tier          | users |  jobs | files  | MB/job  | h/job | paper jobs/scale");
    println!("  --------------+-------+-------+--------+---------+-------+-----------------");
    for row in characterize::per_tier(&trace) {
        let paper = calibration::TABLE1.iter().find(|r| r.tier == row.tier);
        println!(
            "  {:<13} | {:>5} | {:>5} | {:>6} | {:>7} | {:>5.2} | {:>8}",
            row.tier.name(),
            row.users,
            row.jobs,
            row.files
                .map(|f| f.to_string())
                .unwrap_or_else(|| "-".into()),
            row.input_mb_per_job
                .map(|m| format!("{m:.0}"))
                .unwrap_or_else(|| "-".into()),
            row.hours_per_job,
            paper
                .map(|p| format!("{:.0}", p.jobs as f64 / SCALE))
                .unwrap_or_default()
        );
    }
    let all = characterize::overall(&trace);
    println!(
        "  ALL: {} users, {} jobs, {:.2} h/job (paper: 561 users, {:.0} jobs, 6.87 h)\n",
        all.users,
        all.jobs,
        all.hours_per_job,
        calibration::TOTAL_JOBS as f64 / SCALE
    );

    // ---- Table 2 ----
    let mut rows = characterize::per_domain(&trace);
    for row in &mut rows {
        // Fill the filecule column from the partition.
        let mut touched = std::collections::HashSet::new();
        for j in trace.job_ids() {
            if trace.domain_name(trace.job(j).domain) == row.domain {
                for &f in trace.job_files(j) {
                    if let Some(g) = set.filecule_of(f) {
                        touched.insert(g);
                    }
                }
            }
        }
        row.filecules = Some(touched.len() as u64);
    }
    println!("Table 2 — characteristics per location:");
    println!("  domain | jobs  | nodes | sites | users | filecules | files  | GB");
    println!("  -------+-------+-------+-------+-------+-----------+--------+--------");
    for r in &rows {
        println!(
            "  {:<6} | {:>5} | {:>5} | {:>5} | {:>5} | {:>9} | {:>6} | {:>7.0}",
            r.domain,
            r.jobs,
            r.submission_nodes,
            r.sites,
            r.users,
            r.filecules.unwrap_or(0),
            r.files,
            r.total_gb
        );
    }

    // ---- Figure 1: files per job ----
    let fpj: Vec<f64> = characterize::files_per_job(&trace)
        .into_iter()
        .map(f64::from)
        .collect();
    let mean = fpj.iter().sum::<f64>() / fpj.len() as f64;
    let (p50, p90, p99) = percentiles(fpj);
    println!("\nFigure 1 — input files per job:");
    println!("  mean {mean:.1} (paper: 108), median {p50:.0}, p90 {p90:.0}, p99 {p99:.0}");

    // ---- Figure 2: daily activity ----
    let (jobs_daily, req_daily) = characterize::daily_activity(&trace);
    println!("\nFigure 2 — daily activity:");
    println!(
        "  jobs/day mean {:.1} peak {} | requests/day mean {:.0} peak {}",
        jobs_daily.daily_mean(),
        jobs_daily.peak().1,
        req_daily.daily_mean(),
        req_daily.peak().1
    );

    // ---- Figure 3: file sizes ----
    let sizes: Vec<f64> = characterize::accessed_file_sizes(&trace)
        .into_iter()
        .map(|b| b as f64 / MB as f64)
        .collect();
    let (s50, s90, s99) = percentiles(sizes);
    println!("\nFigure 3 — accessed file sizes (MB): median {s50:.0}, p90 {s90:.0}, p99 {s99:.0}");

    // ---- Figures 4-9 ----
    let stats = metrics::partition_stats(&trace, &set);
    println!("\nFigures 4-9 — filecule characteristics:");
    println!(
        "  Fig 4: users/filecule: max {} (paper 44), single-user {:.1}% (paper ~10%)",
        stats.max_users,
        stats.single_user_fraction * 100.0
    );
    let fpj2: Vec<f64> = metrics::filecules_per_job(&trace, &set)
        .into_iter()
        .map(f64::from)
        .collect();
    let (f50, f90, f99) = percentiles(fpj2);
    println!("  Fig 5: filecules/job: median {f50:.0}, p90 {f90:.0}, p99 {f99:.0}");
    for (tier, sizes) in metrics::sizes_by_tier(&trace, &set) {
        let (a, b, c) = percentiles(sizes.iter().map(|&s| s as f64 / MB as f64).collect());
        println!(
            "  Fig 6 [{:<13}] filecule MB: median {a:.0}, p90 {b:.0}, p99 {c:.0}",
            tier.name()
        );
    }
    for (tier, counts) in metrics::file_counts_by_tier(&trace, &set) {
        let (a, b, c) = percentiles(counts.iter().map(|&s| s as f64).collect());
        println!(
            "  Fig 7 [{:<13}] files/filecule: median {a:.0}, p90 {b:.0}, p99 {c:.0}",
            tier.name()
        );
    }
    for (tier, pops) in metrics::popularity_by_tier(&trace, &set) {
        let (a, b, c) = percentiles(pops.iter().map(|&s| s as f64).collect());
        println!(
            "  Fig 8 [{:<13}] requests/filecule: median {a:.0}, p90 {b:.0}, p99 {c:.0}",
            tier.name()
        );
    }
    let pops = metrics::popularity_all(&set);
    let hot = pops.iter().filter(|&&p| p >= 30).count();
    let cold = pops.iter().filter(|&&p| p < 5).count();
    println!(
        "  Fig 9: {} filecules total; {} requested <5 times, {} requested >=30 times",
        pops.len(),
        cold,
        hot
    );
    println!(
        "  (paper shape: thousands of filecules below 50 requests, tens above 300\n   \
         at full scale — popularity is flattened, not Zipf)"
    );
}
